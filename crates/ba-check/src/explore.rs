//! Deterministic exploration of the fault-schedule space.
//!
//! Two seeded strategies generate candidate [`ScheduleSpec`]s:
//!
//! * [`Strategy::Exhaustive`] — bounded enumeration for small `(n, t)`:
//!   single faults with every menu behaviour first (small counterexamples
//!   surface early), then the Passive-plus-link-drop family, then
//!   multi-fault products, truncated at the budget;
//! * [`Strategy::Random`] — [`SimRng`]-driven sampling for spaces too large
//!   to enumerate; candidate `i` is drawn from `derive_seed(seed, i)`, so
//!   the sample set depends only on `(seed, budget)`.
//!
//! Candidates run through the target via [`run_sweep`]: outer fan-out
//! across worker threads, every inner simulation sequential, results
//! re-sorted by candidate index — the violation list is byte-identical at
//! any thread count. Each violating schedule is then shrunk to a minimal
//! counterexample (see [`shrink`](crate::shrink)).

use crate::schedule::FaultSchedule;
use crate::shrink;
use ba_algos::checkable::CheckTarget;
use ba_crypto::rng::{derive_seed, SimRng};
use ba_crypto::ProcessId;
use ba_sim::schedule::{FaultBehavior, LinkDrop, ScheduleSpec};
use ba_sim::sweep::run_sweep;
use std::collections::BTreeSet;

/// How the schedule space is covered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Bounded exhaustive enumeration (small `(n, t)`).
    Exhaustive,
    /// Seeded random sampling (large `(n, t)`).
    Random,
}

/// Parameters of one exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// The target under test.
    pub target: &'static CheckTarget,
    /// Number of processors.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// The transmitter's input value (binary).
    pub value: u64,
    /// Base seed: key registries use it directly, random sampling derives
    /// per-candidate seeds from it.
    pub seed: u64,
    /// Maximum number of schedules to run.
    pub budget: usize,
    /// Worker threads for the outer fan-out (inner runs are sequential;
    /// results are identical for any value).
    pub threads: usize,
    /// Coverage strategy.
    pub strategy: Strategy,
}

/// One discovered violation: the schedule as found and its shrunk form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// The schedule as the explorer found it.
    pub schedule: FaultSchedule,
    /// What failed (agreement violation or bound excess).
    pub failure: String,
    /// The greedily-minimized counterexample.
    pub minimized: FaultSchedule,
    /// The minimized schedule's failure (may differ in wording from
    /// `failure` while still violating).
    pub minimized_failure: String,
}

/// Result of one exploration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExploreReport {
    /// The target's name.
    pub target: String,
    /// How many schedules actually ran.
    pub explored: usize,
    /// Violations in candidate order.
    pub violations: Vec<Violation>,
}

/// Explores the schedule space per `options`.
pub fn explore(options: &ExploreOptions) -> ExploreReport {
    let specs = match options.strategy {
        Strategy::Exhaustive => enumerate_schedules(options),
        Strategy::Random => sample_schedules(options),
    };
    let failures: Vec<Option<String>> = run_sweep(&specs, options.threads, |_, spec| {
        let schedule = bind(options, spec.clone());
        options.target.run(&schedule.config(1)).failure()
    });

    let violating: Vec<(FaultSchedule, String)> = specs
        .iter()
        .zip(failures)
        .filter_map(|(spec, failure)| failure.map(|f| (bind(options, spec.clone()), f)))
        .collect();
    // Shrinking is greedy and deterministic per schedule; fan the violations
    // out the same way the runs were.
    let minimized: Vec<(FaultSchedule, String)> =
        run_sweep(&violating, options.threads, |_, (schedule, _)| {
            shrink::shrink(options.target, schedule)
        });
    let violations = violating
        .into_iter()
        .zip(minimized)
        .map(
            |((schedule, failure), (minimized, minimized_failure))| Violation {
                schedule,
                failure,
                minimized,
                minimized_failure,
            },
        )
        .collect();

    ExploreReport {
        target: options.target.name.to_string(),
        explored: specs.len(),
        violations,
    }
}

fn bind(options: &ExploreOptions, spec: ScheduleSpec) -> FaultSchedule {
    FaultSchedule {
        target: options.target.name.to_string(),
        n: options.n,
        t: options.t,
        value: options.value,
        seed: options.seed,
        spec,
    }
}

/// The per-processor behaviour menu for exhaustive enumeration: every
/// restriction the adapter can compile, with single-element target sets
/// (multi-element omissions are reachable by the random strategy and would
/// shrink back to singles anyway).
fn behavior_menu(p: u32, n: usize) -> Vec<FaultBehavior> {
    let mut menu = vec![
        FaultBehavior::Silent,
        FaultBehavior::CrashAt { phase: 2 },
        FaultBehavior::Passive,
    ];
    for q in 0..n as u32 {
        if q != p {
            menu.push(FaultBehavior::OmitTo {
                targets: vec![ProcessId(q)],
            });
        }
    }
    if p == 0 {
        for q in 1..n as u32 {
            menu.push(FaultBehavior::Equivocate {
                ones: vec![ProcessId(q)],
            });
        }
    }
    menu
}

fn push_valid(options: &ExploreOptions, spec: ScheduleSpec, out: &mut Vec<ScheduleSpec>) -> bool {
    if out.len() >= options.budget {
        return false;
    }
    let schedule = bind(options, spec.clone());
    if options.target.validate(&schedule.config(1)).is_ok() {
        out.push(spec);
    }
    out.len() < options.budget
}

/// Enumerates schedules for small `(n, t)` in a fixed order: the empty
/// schedule, all single faults, the Passive-plus-single-link-drop family,
/// then multi-fault behaviour products — truncated at the budget.
pub fn enumerate_schedules(options: &ExploreOptions) -> Vec<ScheduleSpec> {
    let n = options.n;
    let mut out = Vec::new();
    if !push_valid(options, ScheduleSpec::default(), &mut out) {
        return out;
    }

    // Single faults, every menu behaviour.
    for p in 0..n as u32 {
        for behavior in behavior_menu(p, n) {
            let spec = ScheduleSpec {
                faults: vec![(ProcessId(p), behavior)],
                link_drops: vec![],
            };
            if !push_valid(options, spec, &mut out) {
                return out;
            }
        }
    }

    // Engine-level link drops: a passive faulty sender whose single link
    // to one peer is cut in one early phase.
    for p in 0..n as u32 {
        for phase in 1..=2usize {
            for to in 0..n as u32 {
                if to == p {
                    continue;
                }
                let spec = ScheduleSpec {
                    faults: vec![(ProcessId(p), FaultBehavior::Passive)],
                    link_drops: vec![LinkDrop {
                        phase,
                        from: ProcessId(p),
                        to: ProcessId(to),
                    }],
                };
                if !push_valid(options, spec, &mut out) {
                    return out;
                }
            }
        }
    }

    // Multi-fault products over sorted fault sets of size 2..=t, by
    // ascending bitmask then lexicographic behaviour choice (odometer).
    if options.t >= 2 && n <= 16 {
        for mask in 1u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size < 2 || size > options.t {
                continue;
            }
            let members: Vec<u32> = (0..n as u32).filter(|p| mask & (1 << p) != 0).collect();
            let menus: Vec<Vec<FaultBehavior>> =
                members.iter().map(|&p| behavior_menu(p, n)).collect();
            let mut odometer = vec![0usize; members.len()];
            loop {
                let faults: Vec<(ProcessId, FaultBehavior)> = members
                    .iter()
                    .zip(&menus)
                    .zip(&odometer)
                    .map(|((&p, menu), &i)| (ProcessId(p), menu[i].clone()))
                    .collect();
                let spec = ScheduleSpec {
                    faults,
                    link_drops: vec![],
                };
                if !push_valid(options, spec, &mut out) {
                    return out;
                }
                // Advance the odometer.
                let mut digit = 0;
                loop {
                    if digit == odometer.len() {
                        break;
                    }
                    odometer[digit] += 1;
                    if odometer[digit] < menus[digit].len() {
                        break;
                    }
                    odometer[digit] = 0;
                    digit += 1;
                }
                if digit == odometer.len() {
                    break;
                }
            }
        }
    }
    out
}

/// Samples `budget` random schedules; candidate `i` depends only on
/// `derive_seed(seed, i)`, never on thread scheduling. Candidates the
/// target rejects are skipped (deterministically), so the result may hold
/// fewer than `budget` specs.
pub fn sample_schedules(options: &ExploreOptions) -> Vec<ScheduleSpec> {
    let phases_hint = options.t + 3;
    let mut out = Vec::new();
    for i in 0..options.budget {
        let mut rng = SimRng::new(derive_seed(options.seed, i as u64));
        let spec = random_spec(&mut rng, options.n, options.t, phases_hint);
        let schedule = bind(options, spec.clone());
        if options.target.validate(&schedule.config(1)).is_ok() {
            out.push(spec);
        }
    }
    out
}

fn random_spec(rng: &mut SimRng, n: usize, t: usize, phases_hint: usize) -> ScheduleSpec {
    let fault_count = rng.range_usize(1, t + 1);
    let mut pids: BTreeSet<u32> = BTreeSet::new();
    while pids.len() < fault_count {
        pids.insert(rng.range_u32(0, n as u32));
    }
    let faults: Vec<(ProcessId, FaultBehavior)> = pids
        .iter()
        .map(|&p| {
            let behavior = match rng.range_u32(0, 5) {
                0 => FaultBehavior::Silent,
                1 => FaultBehavior::CrashAt {
                    phase: rng.range_usize(1, phases_hint + 1),
                },
                2 => {
                    let targets: Vec<ProcessId> = (0..n as u32)
                        .filter(|&q| q != p && rng.next_bool())
                        .map(ProcessId)
                        .collect();
                    if targets.is_empty() {
                        FaultBehavior::Passive
                    } else {
                        FaultBehavior::OmitTo { targets }
                    }
                }
                3 => FaultBehavior::Passive,
                _ if p == 0 => {
                    let mut ones: Vec<ProcessId> = (1..n as u32)
                        .filter(|_| rng.next_bool())
                        .map(ProcessId)
                        .collect();
                    if ones.is_empty() {
                        ones.push(ProcessId(rng.range_u32(1, n as u32)));
                    }
                    FaultBehavior::Equivocate { ones }
                }
                _ => FaultBehavior::Silent,
            };
            (ProcessId(p), behavior)
        })
        .collect();

    let mut drops: BTreeSet<LinkDrop> = BTreeSet::new();
    let faulty: Vec<u32> = pids.iter().copied().collect();
    for _ in 0..rng.range_usize(0, 3) {
        let from = faulty[rng.range_usize(0, faulty.len())];
        let to = rng.range_u32(0, n as u32);
        if to != from {
            drops.insert(LinkDrop {
                phase: rng.range_usize(1, phases_hint + 1),
                from: ProcessId(from),
                to: ProcessId(to),
            });
        }
    }
    ScheduleSpec {
        faults,
        link_drops: drops.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_algos::checkable::find_target;

    fn options(target: &'static str, strategy: Strategy) -> ExploreOptions {
        ExploreOptions {
            target: find_target(target).unwrap(),
            n: 4,
            t: 1,
            value: 1,
            seed: 7,
            budget: 64,
            threads: 1,
            strategy,
        }
    }

    #[test]
    fn enumeration_is_ordered_and_budget_truncated() {
        let opts = options("ds-broadcast", Strategy::Exhaustive);
        let all = enumerate_schedules(&opts);
        assert!(!all.is_empty());
        assert_eq!(all[0], ScheduleSpec::default(), "empty schedule first");
        assert!(all.len() <= opts.budget);
        let truncated = enumerate_schedules(&ExploreOptions { budget: 5, ..opts });
        assert_eq!(truncated.len(), 5);
        assert_eq!(&all[..5], &truncated[..]);
    }

    #[test]
    fn enumeration_covers_every_behavior_kind_and_link_drops() {
        let opts = ExploreOptions {
            budget: 10_000,
            ..options("ds-broadcast", Strategy::Exhaustive)
        };
        let all = enumerate_schedules(&opts);
        let tags: BTreeSet<&'static str> = all
            .iter()
            .flat_map(|s| s.faults.iter().map(|(_, b)| b.tag()))
            .collect();
        for expected in ["silent", "crash-at", "omit-to", "passive", "equivocate"] {
            assert!(tags.contains(expected), "missing {expected}");
        }
        assert!(all.iter().any(|s| !s.link_drops.is_empty()));
        // Every enumerated schedule passes target validation by construction.
        for spec in &all {
            bind(&opts, spec.clone()).resolve().unwrap();
        }
    }

    #[test]
    fn sampling_is_seed_deterministic_and_valid() {
        let opts = ExploreOptions {
            n: 7,
            t: 3,
            budget: 40,
            ..options("ds-broadcast", Strategy::Random)
        };
        let a = sample_schedules(&opts);
        let b = sample_schedules(&opts);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for spec in &a {
            bind(&opts, spec.clone()).resolve().unwrap();
        }
        let other_seed = sample_schedules(&ExploreOptions { seed: 8, ..opts });
        assert_ne!(a, other_seed, "different seeds sample differently");
    }

    #[test]
    fn sound_target_explores_clean() {
        let opts = options("ds-broadcast", Strategy::Exhaustive);
        let report = explore(&opts);
        assert_eq!(report.explored, enumerate_schedules(&opts).len());
        assert!(report.explored > 0);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn weak_target_yields_minimized_violations() {
        let report = explore(&ExploreOptions {
            budget: 200,
            ..options("ds-weak-relay-threshold", Strategy::Exhaustive)
        });
        assert!(!report.violations.is_empty());
        for violation in &report.violations {
            // Shrinking never grows the schedule.
            assert!(
                violation.minimized.spec.fault_count() <= violation.schedule.spec.fault_count()
            );
            // The minimized schedule still fails.
            let target = find_target("ds-weak-relay-threshold").unwrap();
            assert_eq!(
                target.run(&violation.minimized.config(1)).failure(),
                Some(violation.minimized_failure.clone())
            );
        }
    }
}
