//! # ba-check — deterministic fault-schedule model checking
//!
//! A bounded model checker for the Byzantine Agreement algorithms in
//! `ba-algos`. It drives each registered [`CheckTarget`] (see
//! [`ba_algos::checkable`]) through explicit fault schedules and checks
//! agreement, validity, and the paper's message-count bounds after every
//! run.
//!
//! * [`schedule`] — [`FaultSchedule`]: a serializable check case (target
//!   name, `(n, t)`, value, seed, [`ba_sim::schedule::ScheduleSpec`]);
//! * [`explore`] — seeded exploration: bounded exhaustive enumeration for
//!   small `(n, t)` and `SimRng`-driven random sampling for large, fanned
//!   out with `run_sweep` so reports are byte-identical at any thread
//!   count;
//! * [`shrink`] — greedy deterministic shrinking of violating schedules to
//!   1-minimal counterexamples;
//! * [`ext`] — the extension-layer family: [`ExtSchedule`] binds a seeded
//!   payload and the garbling adversary to the same corpus machinery, with
//!   its own explorer and shrinker (strict outcome agreement is part of
//!   the judged contract);
//! * [`corpus`] — the committed JSON regression corpus (both families,
//!   discriminated by `"family"`), replayed strictly (exact failure-string
//!   match) by tests and CI;
//! * [`json`] — the dependency-free JSON codec the corpus uses
//!   (unsigned-integer-only numbers, so 64-bit seeds round-trip exactly).
//!
//! The determinism contract mirrors the simulator's: every decision the
//! checker makes flows from `(target, n, t, value, seed, budget,
//! strategy)` — never from thread scheduling, iteration order of hash
//! containers, or wall-clock time.

pub mod corpus;
pub mod explore;
pub mod ext;
pub mod json;
pub mod schedule;
pub mod shrink;

pub use ba_algos::checkable::{find_target, targets, CheckTarget};
pub use corpus::{replay, replay_minimal, CorpusCase, CorpusEntry};
pub use explore::{explore, ExploreOptions, ExploreReport, Strategy, Violation};
pub use ext::{
    assert_minimal_ext, explore_ext, shrink_ext, ExtExploreOptions, ExtExploreReport, ExtSchedule,
    ExtViolation,
};
pub use schedule::FaultSchedule;
pub use shrink::{assert_minimal, shrink};
