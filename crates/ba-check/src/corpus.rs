//! The JSON regression corpus: minimized counterexamples committed to the
//! repository and replayed by tests and CI.
//!
//! Format (version 1):
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     { "target": "...", "n": 4, "t": 1, "value": 1, "seed": 0,
//!       "faults": [...], "link_drops": [...],
//!       "failure": "correct processors disagree: ..." },
//!     { "family": "ext", "n": 4, "t": 1,
//!       "payload_len": 96, "payload_seed": 9, "seed": 0,
//!       "inner": "...", "vote_inner": "...",
//!       "faults": [...], "link_drops": [...], "garble": [...],
//!       "failure": "correct p1 and p2 disagree on the outcome: ..." }
//!   ]
//! }
//! ```
//!
//! Entries come in two families, discriminated by the `"family"` field:
//! absent (or `"target"`) means a classic [`FaultSchedule`] against a
//! registered check target; `"ext"` means an [`ExtSchedule`] against the
//! extension layer. Old corpora, written before the ext family existed,
//! parse unchanged.
//!
//! Replay is strict for both families: an entry passes only if the
//! schedule still fails with the *exact* recorded failure string — a
//! changed message means the behaviour drifted and the corpus entry must
//! be regenerated on purpose.

use crate::ext::{self, ExtSchedule};
use crate::json::{self, Json};
use crate::schedule::FaultSchedule;
use crate::shrink;
use std::path::Path;

/// The schedule a corpus entry replays: one of the two check families.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CorpusCase {
    /// A classic schedule against a registered [`CheckTarget`]
    /// (see [`ba_algos::checkable`]).
    Target(FaultSchedule),
    /// An extension-layer schedule (see [`crate::ext`]).
    Ext(ExtSchedule),
}

/// One committed counterexample: a minimized schedule plus the failure it
/// reproduces.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusEntry {
    /// The minimized failing schedule.
    pub case: CorpusCase,
    /// The exact failure string the schedule must reproduce.
    pub failure: String,
}

impl CorpusEntry {
    /// Wraps a classic target-family schedule.
    pub fn target(schedule: FaultSchedule, failure: String) -> CorpusEntry {
        CorpusEntry {
            case: CorpusCase::Target(schedule),
            failure,
        }
    }

    /// Wraps an extension-family schedule.
    pub fn ext(schedule: ExtSchedule, failure: String) -> CorpusEntry {
        CorpusEntry {
            case: CorpusCase::Ext(schedule),
            failure,
        }
    }

    /// The family discriminator as written to JSON.
    pub fn family(&self) -> &'static str {
        match &self.case {
            CorpusCase::Target(_) => "target",
            CorpusCase::Ext(_) => "ext",
        }
    }

    /// A short human-readable label for error messages: the target name
    /// for the classic family, the inner-target pair for ext.
    pub fn describe(&self) -> String {
        match &self.case {
            CorpusCase::Target(schedule) => schedule.target.clone(),
            CorpusCase::Ext(schedule) => {
                format!("ext[{} / {}]", schedule.inner, schedule.vote_inner)
            }
        }
    }

    /// The schedule's JSON object form, whichever family it belongs to.
    pub fn schedule_json(&self) -> Json {
        match &self.case {
            CorpusCase::Target(schedule) => schedule.to_json(),
            CorpusCase::Ext(schedule) => schedule.to_json(),
        }
    }
}

/// The corpus format version this module reads and writes.
pub const CORPUS_VERSION: u64 = 1;

/// Path of the corpus committed with this crate.
pub fn default_corpus_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/regressions.json")
}

/// Renders entries as pretty-printed corpus JSON.
pub fn render(entries: &[CorpusEntry]) -> String {
    let rendered = entries
        .iter()
        .map(|entry| {
            let schedule_json = match &entry.case {
                CorpusCase::Target(schedule) => schedule.to_json(),
                CorpusCase::Ext(schedule) => schedule.to_json(),
            };
            let Json::Obj(mut pairs) = schedule_json else {
                unreachable!("schedule to_json returns an object");
            };
            pairs.push(("failure".to_string(), Json::Str(entry.failure.clone())));
            Json::Obj(pairs)
        })
        .collect();
    Json::Obj(vec![
        ("version".to_string(), Json::Int(CORPUS_VERSION)),
        ("entries".to_string(), Json::Arr(rendered)),
    ])
    .pretty()
}

/// Parses corpus JSON text.
///
/// # Errors
/// Syntax errors, an unsupported version, an unknown family, or malformed
/// entries.
pub fn parse(text: &str) -> Result<Vec<CorpusEntry>, String> {
    let root = json::parse(text)?;
    let version = root
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("corpus missing integer field \"version\"")?;
    if version != CORPUS_VERSION {
        return Err(format!(
            "unsupported corpus version {version} (this build reads {CORPUS_VERSION})"
        ));
    }
    root.get("entries")
        .and_then(Json::as_arr)
        .ok_or("corpus missing array field \"entries\"")?
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let case = match item.get("family").and_then(Json::as_str) {
                None | Some("target") => CorpusCase::Target(
                    FaultSchedule::from_json(item).map_err(|e| format!("entry {i}: {e}"))?,
                ),
                Some("ext") => CorpusCase::Ext(
                    ExtSchedule::from_json(item).map_err(|e| format!("entry {i}: {e}"))?,
                ),
                Some(other) => return Err(format!("entry {i}: unknown family {other:?}")),
            };
            let failure = item
                .get("failure")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i}: missing string field \"failure\""))?
                .to_string();
            Ok(CorpusEntry { case, failure })
        })
        .collect()
}

/// Loads a corpus file.
///
/// # Errors
/// I/O failures (with the path) or parse errors.
pub fn load(path: &Path) -> Result<Vec<CorpusEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading corpus {}: {e}", path.display()))?;
    parse(&text)
}

/// Writes entries to a corpus file, creating parent directories as needed.
///
/// # Errors
/// I/O failures (with the path).
pub fn save(path: &Path, entries: &[CorpusEntry]) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating corpus directory {}: {e}", parent.display()))?;
    }
    std::fs::write(path, render(entries))
        .map_err(|e| format!("writing corpus {}: {e}", path.display()))
}

/// Replays one entry: the schedule must resolve, fail, and reproduce the
/// recorded failure string exactly.
///
/// # Errors
/// Resolution failures, a vanished failure, or a drifted failure string.
pub fn replay(entry: &CorpusEntry, threads: usize) -> Result<(), String> {
    let reproduced = match &entry.case {
        CorpusCase::Target(schedule) => {
            let target = schedule.resolve()?;
            target.run(&schedule.config(threads)).failure()
        }
        CorpusCase::Ext(schedule) => {
            schedule.validate()?;
            schedule.failure(threads)
        }
    };
    match reproduced {
        Some(f) if f == entry.failure => Ok(()),
        Some(f) => Err(format!(
            "failure drifted: expected {:?}, reproduced {:?}",
            entry.failure, f
        )),
        None => Err(format!(
            "schedule no longer fails (expected {:?})",
            entry.failure
        )),
    }
}

/// Replays an entry and re-checks that its schedule is still 1-minimal.
///
/// # Errors
/// Replay failures or minimality violations.
pub fn replay_minimal(entry: &CorpusEntry, threads: usize) -> Result<(), String> {
    replay(entry, threads)?;
    match &entry.case {
        CorpusCase::Target(schedule) => {
            let target = schedule.resolve()?;
            shrink::assert_minimal(target, schedule)
        }
        CorpusCase::Ext(schedule) => ext::assert_minimal_ext(schedule),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::ProcessId;
    use ba_sim::schedule::{FaultBehavior, ScheduleSpec};

    fn splitting_entry() -> CorpusEntry {
        let schedule = FaultSchedule {
            target: "ds-weak-relay-threshold".to_string(),
            n: 4,
            t: 1,
            value: 1,
            seed: 0,
            spec: ScheduleSpec {
                faults: vec![(
                    ProcessId(0),
                    FaultBehavior::OmitTo {
                        targets: vec![ProcessId(2)],
                    },
                )],
                link_drops: vec![],
            },
        };
        let failure = schedule
            .resolve()
            .unwrap()
            .run(&schedule.config(1))
            .failure()
            .expect("the splitting schedule fails on the weakened target");
        CorpusEntry::target(schedule, failure)
    }

    /// The ext-family analogue of the splitting schedule: the weakened
    /// inner target splits the digest words under `p0 OmitTo [p2]`, so p2
    /// carries a wrong digest into reconstruction and fetch while the
    /// availability vote still reaches `t + 1` — a reproducible outcome
    /// disagreement (Decide vs Abort) the strict judge flags.
    fn ext_splitting_entry() -> CorpusEntry {
        let schedule = ExtSchedule {
            n: 4,
            t: 1,
            payload_len: 96,
            payload_seed: 9,
            seed: 0,
            inner: "ds-weak-relay-threshold".to_string(),
            vote_inner: "ds-relay".to_string(),
            spec: ScheduleSpec {
                faults: vec![(
                    ProcessId(0),
                    FaultBehavior::OmitTo {
                        targets: vec![ProcessId(2)],
                    },
                )],
                link_drops: vec![],
            },
            garble: vec![],
        };
        let failure = schedule
            .failure(1)
            .expect("the splitting schedule splits the ext outcome too");
        CorpusEntry::ext(schedule, failure)
    }

    #[test]
    fn corpus_roundtrips_both_families() {
        let entries = vec![splitting_entry(), ext_splitting_entry()];
        let text = render(&entries);
        assert_eq!(parse(&text).unwrap(), entries);
    }

    #[test]
    fn pre_ext_corpora_still_parse() {
        // Entries written before the family discriminator existed carry no
        // "family" field and must keep parsing as the target family.
        let entries = vec![splitting_entry()];
        let text = render(&entries);
        assert!(
            !text.contains("\"family\""),
            "target entries stay familyless"
        );
        assert_eq!(parse(&text).unwrap(), entries);
    }

    #[test]
    fn replay_accepts_exact_match_and_rejects_drift() {
        let entry = splitting_entry();
        replay(&entry, 1).unwrap();
        replay_minimal(&entry, 1).unwrap();

        let mut drifted = entry.clone();
        drifted.failure = "some other failure".to_string();
        assert!(replay(&drifted, 1).unwrap_err().contains("drifted"));

        let mut vanished = entry.clone();
        let CorpusCase::Target(schedule) = &mut vanished.case else {
            unreachable!("splitting entry is target-family");
        };
        schedule.target = "ds-broadcast".to_string();
        assert!(replay(&vanished, 1)
            .unwrap_err()
            .contains("no longer fails"));
    }

    #[test]
    fn ext_entry_replays_exactly_shrinks_to_minimal_and_rejects_drift() {
        let entry = ext_splitting_entry();
        replay(&entry, 1).unwrap();
        replay_minimal(&entry, 1).unwrap();

        let mut drifted = entry.clone();
        drifted.failure = "some other failure".to_string();
        assert!(replay(&drifted, 1).unwrap_err().contains("drifted"));

        let mut vanished = entry.clone();
        let CorpusCase::Ext(schedule) = &mut vanished.case else {
            unreachable!("ext entry is ext-family");
        };
        schedule.inner = "ds-broadcast".to_string();
        assert!(replay(&vanished, 1)
            .unwrap_err()
            .contains("no longer fails"));
    }

    /// Regenerates the committed corpus from the known-bad schedules so
    /// the recorded failure strings always come from an actual run. Invoke
    /// with `cargo test -p ba-check regenerate_committed_corpus -- --ignored`
    /// after an intentional behaviour change.
    #[test]
    #[ignore = "writes the committed corpus; run explicitly after intentional changes"]
    fn regenerate_committed_corpus() {
        let entries = [splitting_entry(), ext_splitting_entry()];
        for entry in &entries {
            replay_minimal(entry, 1).unwrap();
        }
        save(Path::new(default_corpus_path()), &entries).unwrap();
    }

    #[test]
    fn version_mismatch_and_unknown_family_are_rejected() {
        let text = render(&[splitting_entry()]).replace("\"version\": 1", "\"version\": 2");
        assert!(parse(&text).unwrap_err().contains("version 2"));
        let bad_family =
            render(&[ext_splitting_entry()]).replace("\"family\": \"ext\"", "\"family\": \"??\"");
        assert!(parse(&bad_family).unwrap_err().contains("unknown family"));
    }
}
