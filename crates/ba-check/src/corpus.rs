//! The JSON regression corpus: minimized counterexamples committed to the
//! repository and replayed by tests and CI.
//!
//! Format (version 1):
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     { "target": "...", "n": 4, "t": 1, "value": 1, "seed": 0,
//!       "faults": [...], "link_drops": [...],
//!       "failure": "correct processors disagree: ..." }
//!   ]
//! }
//! ```
//!
//! Replay is strict: an entry passes only if the schedule still fails with
//! the *exact* recorded failure string — a changed message means the
//! behaviour drifted and the corpus entry must be regenerated on purpose.

use crate::json::{self, Json};
use crate::schedule::FaultSchedule;
use crate::shrink;
use std::path::Path;

/// One committed counterexample: a minimized schedule plus the failure it
/// reproduces.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusEntry {
    /// The minimized failing schedule.
    pub schedule: FaultSchedule,
    /// The exact failure string the schedule must reproduce.
    pub failure: String,
}

/// The corpus format version this module reads and writes.
pub const CORPUS_VERSION: u64 = 1;

/// Path of the corpus committed with this crate.
pub fn default_corpus_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/regressions.json")
}

/// Renders entries as pretty-printed corpus JSON.
pub fn render(entries: &[CorpusEntry]) -> String {
    let rendered = entries
        .iter()
        .map(|entry| {
            let Json::Obj(mut pairs) = entry.schedule.to_json() else {
                unreachable!("FaultSchedule::to_json returns an object");
            };
            pairs.push(("failure".to_string(), Json::Str(entry.failure.clone())));
            Json::Obj(pairs)
        })
        .collect();
    Json::Obj(vec![
        ("version".to_string(), Json::Int(CORPUS_VERSION)),
        ("entries".to_string(), Json::Arr(rendered)),
    ])
    .pretty()
}

/// Parses corpus JSON text.
///
/// # Errors
/// Syntax errors, an unsupported version, or malformed entries.
pub fn parse(text: &str) -> Result<Vec<CorpusEntry>, String> {
    let root = json::parse(text)?;
    let version = root
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("corpus missing integer field \"version\"")?;
    if version != CORPUS_VERSION {
        return Err(format!(
            "unsupported corpus version {version} (this build reads {CORPUS_VERSION})"
        ));
    }
    root.get("entries")
        .and_then(Json::as_arr)
        .ok_or("corpus missing array field \"entries\"")?
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let schedule = FaultSchedule::from_json(item).map_err(|e| format!("entry {i}: {e}"))?;
            let failure = item
                .get("failure")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i}: missing string field \"failure\""))?
                .to_string();
            Ok(CorpusEntry { schedule, failure })
        })
        .collect()
}

/// Loads a corpus file.
///
/// # Errors
/// I/O failures (with the path) or parse errors.
pub fn load(path: &Path) -> Result<Vec<CorpusEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading corpus {}: {e}", path.display()))?;
    parse(&text)
}

/// Writes entries to a corpus file, creating parent directories as needed.
///
/// # Errors
/// I/O failures (with the path).
pub fn save(path: &Path, entries: &[CorpusEntry]) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating corpus directory {}: {e}", parent.display()))?;
    }
    std::fs::write(path, render(entries))
        .map_err(|e| format!("writing corpus {}: {e}", path.display()))
}

/// Replays one entry: the schedule must resolve, fail, and reproduce the
/// recorded failure string exactly.
///
/// # Errors
/// Resolution failures, a vanished failure, or a drifted failure string.
pub fn replay(entry: &CorpusEntry, threads: usize) -> Result<(), String> {
    let target = entry.schedule.resolve()?;
    match target.run(&entry.schedule.config(threads)).failure() {
        Some(f) if f == entry.failure => Ok(()),
        Some(f) => Err(format!(
            "failure drifted: expected {:?}, reproduced {:?}",
            entry.failure, f
        )),
        None => Err(format!(
            "schedule no longer fails (expected {:?})",
            entry.failure
        )),
    }
}

/// Replays an entry and re-checks that its schedule is still 1-minimal.
///
/// # Errors
/// Replay failures or minimality violations.
pub fn replay_minimal(entry: &CorpusEntry, threads: usize) -> Result<(), String> {
    replay(entry, threads)?;
    let target = entry.schedule.resolve()?;
    shrink::assert_minimal(target, &entry.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::ProcessId;
    use ba_sim::schedule::{FaultBehavior, ScheduleSpec};

    fn splitting_entry() -> CorpusEntry {
        let schedule = FaultSchedule {
            target: "ds-weak-relay-threshold".to_string(),
            n: 4,
            t: 1,
            value: 1,
            seed: 0,
            spec: ScheduleSpec {
                faults: vec![(
                    ProcessId(0),
                    FaultBehavior::OmitTo {
                        targets: vec![ProcessId(2)],
                    },
                )],
                link_drops: vec![],
            },
        };
        let failure = schedule
            .resolve()
            .unwrap()
            .run(&schedule.config(1))
            .failure()
            .expect("the splitting schedule fails on the weakened target");
        CorpusEntry { schedule, failure }
    }

    #[test]
    fn corpus_roundtrips() {
        let entries = vec![splitting_entry()];
        let text = render(&entries);
        assert_eq!(parse(&text).unwrap(), entries);
    }

    #[test]
    fn replay_accepts_exact_match_and_rejects_drift() {
        let entry = splitting_entry();
        replay(&entry, 1).unwrap();
        replay_minimal(&entry, 1).unwrap();

        let mut drifted = entry.clone();
        drifted.failure = "some other failure".to_string();
        assert!(replay(&drifted, 1).unwrap_err().contains("drifted"));

        let mut vanished = entry.clone();
        vanished.schedule.target = "ds-broadcast".to_string();
        assert!(replay(&vanished, 1)
            .unwrap_err()
            .contains("no longer fails"));
    }

    /// Regenerates the committed corpus from the known-bad schedule so the
    /// recorded failure strings always come from an actual run. Invoke with
    /// `cargo test -p ba-check regenerate_committed_corpus -- --ignored`
    /// after an intentional behaviour change.
    #[test]
    #[ignore = "writes the committed corpus; run explicitly after intentional changes"]
    fn regenerate_committed_corpus() {
        let entry = splitting_entry();
        replay_minimal(&entry, 1).unwrap();
        save(Path::new(default_corpus_path()), &[entry]).unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = render(&[splitting_entry()]).replace("\"version\": 1", "\"version\": 2");
        assert!(parse(&text).unwrap_err().contains("version 2"));
    }
}
