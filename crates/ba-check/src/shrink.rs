//! Greedy counterexample shrinking.
//!
//! Given a failing [`FaultSchedule`], [`shrink`] repeatedly tries the
//! smallest structural reductions — in a fixed order, accepting the first
//! one that still fails — until no reduction keeps the failure alive:
//!
//! 1. drop a whole faulty processor (and its link drops);
//! 2. remove a single link drop;
//! 3. remove a single omission target (an emptied `OmitTo` becomes
//!    `Passive`) or equivocation recipient;
//! 4. delay a crash by one phase (capped at the run's phase count).
//!
//! Every accepted step strictly decreases the lexicographic measure
//! (fault count, restriction count, total crash headroom), so the loop
//! terminates; the fixpoint is *1-minimal*: removing any single faulty
//! processor or omission from the result makes the violation disappear.
//! The process is fully deterministic — same input schedule, same output.

use crate::schedule::FaultSchedule;
use ba_algos::checkable::CheckTarget;
use ba_sim::schedule::FaultBehavior;

/// Shrinks a failing schedule to a 1-minimal counterexample and returns it
/// with its failure description.
///
/// # Panics
/// Panics if `schedule` does not actually fail under `target`.
pub fn shrink(target: &CheckTarget, schedule: &FaultSchedule) -> (FaultSchedule, String) {
    let mut current = schedule.clone();
    let mut failure = run_failure(target, &current)
        .expect("shrink requires a schedule that fails under the target");
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if target.validate(&candidate.config(1)).is_err() {
                continue;
            }
            if let Some(f) = run_failure(target, &candidate) {
                current = candidate;
                failure = f;
                improved = true;
                break;
            }
        }
        if !improved {
            return (current, failure);
        }
    }
}

/// Checks that `schedule` (which must fail under `target`) is 1-minimal:
/// no single-fault or single-omission removal still fails.
///
/// # Errors
/// Describes the first reduction that still violates, or reports that the
/// schedule does not fail at all.
pub fn assert_minimal(target: &CheckTarget, schedule: &FaultSchedule) -> Result<(), String> {
    if run_failure(target, schedule).is_none() {
        return Err("schedule does not fail, so minimality is vacuous".to_string());
    }
    for candidate in removal_candidates(schedule) {
        if target.validate(&candidate.config(1)).is_err() {
            continue;
        }
        if let Some(f) = run_failure(target, &candidate) {
            return Err(format!(
                "not minimal: a reduced schedule ({} fault(s), {} link drop(s)) still fails: {f}",
                candidate.spec.fault_count(),
                candidate.spec.link_drops.len(),
            ));
        }
    }
    Ok(())
}

fn run_failure(target: &CheckTarget, schedule: &FaultSchedule) -> Option<String> {
    target.run(&schedule.config(1)).failure()
}

/// Strict removals only (steps 1–3): the reductions whose failure would
/// contradict 1-minimality.
fn removal_candidates(schedule: &FaultSchedule) -> Vec<FaultSchedule> {
    let mut out = Vec::new();

    // 1. Drop a whole faulty processor, taking its link drops with it.
    for i in 0..schedule.spec.faults.len() {
        let mut c = schedule.clone();
        let (pid, _) = c.spec.faults.remove(i);
        c.spec.link_drops.retain(|d| d.from != pid);
        out.push(c);
    }

    // 2. Remove a single link drop.
    for j in 0..schedule.spec.link_drops.len() {
        let mut c = schedule.clone();
        c.spec.link_drops.remove(j);
        out.push(c);
    }

    // 3. Remove a single omission target or equivocation recipient.
    for (i, (_, behavior)) in schedule.spec.faults.iter().enumerate() {
        match behavior {
            FaultBehavior::OmitTo { targets } => {
                for k in 0..targets.len() {
                    let mut reduced = targets.clone();
                    reduced.remove(k);
                    let mut c = schedule.clone();
                    c.spec.faults[i].1 = if reduced.is_empty() {
                        FaultBehavior::Passive
                    } else {
                        FaultBehavior::OmitTo { targets: reduced }
                    };
                    out.push(c);
                }
            }
            FaultBehavior::Equivocate { ones } => {
                for k in 0..ones.len() {
                    let mut reduced = ones.clone();
                    reduced.remove(k);
                    let mut c = schedule.clone();
                    c.spec.faults[i].1 = FaultBehavior::Equivocate { ones: reduced };
                    out.push(c);
                }
            }
            _ => {}
        }
    }
    out
}

fn candidates(schedule: &FaultSchedule) -> Vec<FaultSchedule> {
    let mut out = removal_candidates(schedule);

    // 4. Delay a crash by one phase — a processor that crashes later is
    // "less faulty". Capped so the measure (total headroom to the cap)
    // strictly decreases and the loop terminates.
    let phase_cap = schedule.t + 4;
    for (i, (_, behavior)) in schedule.spec.faults.iter().enumerate() {
        if let FaultBehavior::CrashAt { phase } = behavior {
            if *phase < phase_cap {
                let mut c = schedule.clone();
                c.spec.faults[i].1 = FaultBehavior::CrashAt { phase: phase + 1 };
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_algos::checkable::find_target;
    use ba_crypto::ProcessId;
    use ba_sim::schedule::{LinkDrop, ScheduleSpec};

    fn weak_target() -> &'static CheckTarget {
        find_target("ds-weak-relay-threshold").unwrap()
    }

    /// A deliberately bloated failing schedule: the splitting omission plus
    /// an extra omission target and a link drop in a phase where the
    /// transmitter sends nothing anyway.
    fn bloated() -> FaultSchedule {
        FaultSchedule {
            target: "ds-weak-relay-threshold".to_string(),
            n: 4,
            t: 1,
            value: 1,
            seed: 0,
            spec: ScheduleSpec {
                faults: vec![(
                    ProcessId(0),
                    FaultBehavior::OmitTo {
                        targets: vec![ProcessId(2), ProcessId(3)],
                    },
                )],
                link_drops: vec![LinkDrop {
                    phase: 2,
                    from: ProcessId(0),
                    to: ProcessId(1),
                }],
            },
        }
    }

    #[test]
    fn shrinks_bloated_schedule_to_one_minimal_core() {
        let target = weak_target();
        assert!(
            target.run(&bloated().config(1)).failure().is_some(),
            "precondition: the bloated schedule fails"
        );
        let (minimal, failure) = shrink(target, &bloated());
        assert!(!failure.is_empty());
        assert_eq!(minimal.spec.fault_count(), 1, "one faulty processor");
        assert!(minimal.spec.link_drops.is_empty(), "drop was irrelevant");
        assert_minimal(target, &minimal).unwrap();
        // Shrinking is deterministic.
        assert_eq!(shrink(target, &bloated()), (minimal, failure));
    }

    #[test]
    fn assert_minimal_flags_reducible_schedules() {
        let target = weak_target();
        let err = assert_minimal(target, &bloated()).unwrap_err();
        assert!(err.contains("not minimal"), "got: {err}");
    }

    #[test]
    fn assert_minimal_rejects_passing_schedules() {
        let mut passing = bloated();
        passing.target = "ds-broadcast".to_string();
        let sound = find_target("ds-broadcast").unwrap();
        let err = assert_minimal(sound, &passing).unwrap_err();
        assert!(err.contains("does not fail"), "got: {err}");
    }
}
