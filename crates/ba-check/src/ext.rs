//! The extension-layer check family: serializable schedules for
//! [`ba_ext`]'s payload-agreement protocol, explored, shrunk and replayed
//! through the same corpus machinery as the classic targets.
//!
//! An [`ExtSchedule`] is the extension analogue of
//! [`FaultSchedule`](crate::schedule::FaultSchedule): instead of a target
//! name and a one-word input it carries the grid geometry, a seeded
//! payload (serialized as `(payload_len, payload_seed)` so the corpus
//! stays integer-only), the inner-BA target names for digest agreement
//! and the availability vote, a generic [`ScheduleSpec`] applied to every
//! stage, and the extension-specific **garble** set (relays that corrupt
//! chunk bytes and `Full` fetch responses). Running a schedule delegates
//! to [`ba_ext::check::run_scenario`], whose judge enforces strict
//! outcome agreement — so a corpus entry in this family certifies a
//! reproducible *split outcome*, wrong payload, or unexcused abort.
//!
//! Shrinking mirrors [`crate::shrink`]: greedy, deterministic, first
//! still-failing candidate wins, with two extension-specific steps —
//! dropping a garbler (a removal that counts against 1-minimality) and
//! halving the payload (a simplification that does not).

use crate::json::{self, Json};
use crate::schedule::{field_u64, ids_from_json, ids_to_json, spec_from_json, spec_to_json};
use ba_crypto::rng::SimRng;
use ba_crypto::{Bytes, ProcessId};
use ba_ext::check::{run_scenario, standard_scenarios, ExtCheckOutcome, ExtScenario};
use ba_ext::{ExtOptions, DISSEMINATION_PHASES};
use ba_sim::schedule::{FaultBehavior, ScheduleSpec};
use ba_sim::sweep::run_sweep;

/// A complete, replayable extension check case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExtSchedule {
    /// Number of processors (a perfect square `m² ≥ 4`).
    pub n: usize,
    /// Fault budget (`t ≤ m − 1`, shared by schedule faults and garblers).
    pub t: usize,
    /// Length of the seeded payload in bytes.
    pub payload_len: usize,
    /// Seed of the payload byte stream.
    pub payload_seed: u64,
    /// Run seed (keys, inner-BA seeds).
    pub seed: u64,
    /// Inner-BA target for digest agreement.
    pub inner: String,
    /// Inner-BA target for the availability vote.
    pub vote_inner: String,
    /// Generic fault schedule, applied to every stage.
    pub spec: ScheduleSpec,
    /// Garbling relays (disjoint from `spec.faults`).
    pub garble: Vec<ProcessId>,
}

impl ExtSchedule {
    /// The deterministic payload this schedule runs on.
    pub fn payload(&self) -> Bytes {
        let mut rng = SimRng::new(self.payload_seed);
        Bytes::from(
            (0..self.payload_len)
                .map(|_| rng.next_u64() as u8)
                .collect::<Vec<u8>>(),
        )
    }

    /// The [`ExtOptions`] replaying this schedule with `threads` workers
    /// (results are identical for any value).
    ///
    /// # Errors
    /// Unknown inner-target names (the options hold `&'static` names, so
    /// they must resolve through the registry).
    pub fn options(&self, threads: usize) -> Result<ExtOptions, String> {
        let inner = ba_algos::checkable::find_target(&self.inner)
            .ok_or_else(|| format!("unknown inner target {:?}", self.inner))?;
        let vote = ba_algos::checkable::find_target(&self.vote_inner)
            .ok_or_else(|| format!("unknown vote target {:?}", self.vote_inner))?;
        Ok(ExtOptions::new()
            .with_n(self.n)
            .with_t(self.t)
            .with_seed(self.seed)
            .with_threads(threads)
            .with_inner(inner.name)
            .with_vote_inner(vote.name))
    }

    /// The scenario form [`ba_ext::check`] runs.
    pub fn scenario(&self) -> ExtScenario {
        ExtScenario {
            spec: self.spec.clone(),
            garble: self.garble.clone(),
            label: format!(
                "ext n={} t={} ({} fault(s), {} garbler(s))",
                self.n,
                self.t,
                self.spec.fault_count(),
                self.garble.len()
            ),
        }
    }

    /// Validates geometry, inner targets and the scenario without running.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let opts = self.options(1)?;
        opts.validate()?;
        self.scenario().validate(self.n, self.t)
    }

    /// Runs the schedule and judges the outcome.
    pub fn run(&self, threads: usize) -> ExtCheckOutcome {
        let opts = match self.options(threads) {
            Ok(opts) => opts,
            Err(msg) => {
                return ExtCheckOutcome {
                    label: self.scenario().label,
                    report: None,
                    failure: Some(format!("invalid schedule: {msg}")),
                }
            }
        };
        run_scenario(&self.payload(), &opts, &self.scenario())
    }

    /// `Some(description)` when a guaranteed property is violated.
    pub fn failure(&self, threads: usize) -> Option<String> {
        self.run(threads).failure
    }

    /// The JSON object form: a `"family": "ext"` discriminator plus the
    /// integer-only parameters (see the corpus format in `DESIGN.md`).
    pub fn to_json(&self) -> Json {
        let (faults, drops) = spec_to_json(&self.spec);
        Json::Obj(vec![
            ("family".to_string(), Json::Str("ext".to_string())),
            ("n".to_string(), Json::Int(self.n as u64)),
            ("t".to_string(), Json::Int(self.t as u64)),
            (
                "payload_len".to_string(),
                Json::Int(self.payload_len as u64),
            ),
            ("payload_seed".to_string(), Json::Int(self.payload_seed)),
            ("seed".to_string(), Json::Int(self.seed)),
            ("inner".to_string(), Json::Str(self.inner.clone())),
            ("vote_inner".to_string(), Json::Str(self.vote_inner.clone())),
            ("faults".to_string(), faults),
            ("link_drops".to_string(), drops),
            ("garble".to_string(), ids_to_json(&self.garble)),
        ])
    }

    /// Parses the object form produced by [`ExtSchedule::to_json`].
    ///
    /// # Errors
    /// A description of the first missing or ill-typed field.
    pub fn from_json(value: &Json) -> Result<ExtSchedule, String> {
        match value.get("family").and_then(Json::as_str) {
            Some("ext") => {}
            other => return Err(format!("expected \"family\": \"ext\", got {other:?}")),
        }
        let string_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("ext schedule missing string field {key:?}"))
        };
        Ok(ExtSchedule {
            n: field_u64(value, "n")? as usize,
            t: field_u64(value, "t")? as usize,
            payload_len: field_u64(value, "payload_len")? as usize,
            payload_seed: field_u64(value, "payload_seed")?,
            seed: field_u64(value, "seed")?,
            inner: string_field("inner")?,
            vote_inner: string_field("vote_inner")?,
            spec: spec_from_json(value)?,
            garble: ids_from_json(value, "garble")?,
        })
    }

    /// Parses an ext schedule from JSON text.
    ///
    /// # Errors
    /// Syntax errors from the parser or structural errors from
    /// [`ExtSchedule::from_json`].
    pub fn from_text(text: &str) -> Result<ExtSchedule, String> {
        ExtSchedule::from_json(&json::parse(text)?)
    }
}

/// Shrinks a failing ext schedule to a 1-minimal counterexample and
/// returns it with its failure description.
///
/// Candidate order mirrors [`crate::shrink`]: removals first (faulty
/// processor with its link drops, garbler, single link drop, single
/// omission target or equivocation recipient), then a crash delayed by
/// one phase (capped at the dissemination phase count), then the payload
/// halved. Every accepted step strictly decreases the measure (fault
/// count, restriction count, crash headroom, payload length), so the
/// loop terminates deterministically.
///
/// # Panics
/// Panics if `schedule` does not actually fail.
pub fn shrink_ext(schedule: &ExtSchedule) -> (ExtSchedule, String) {
    let mut current = schedule.clone();
    let mut failure = current
        .failure(1)
        .expect("shrink requires a schedule that fails");
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if candidate.validate().is_err() {
                continue;
            }
            if let Some(f) = candidate.failure(1) {
                current = candidate;
                failure = f;
                improved = true;
                break;
            }
        }
        if !improved {
            return (current, failure);
        }
    }
}

/// Checks that a failing ext schedule is 1-minimal: no single removal —
/// faulty processor, garbler, link drop, or omission — still fails.
/// Payload halving is a simplification, not a removal, so it does not
/// count against minimality.
///
/// # Errors
/// Describes the first reduction that still violates, or reports that the
/// schedule does not fail at all.
pub fn assert_minimal_ext(schedule: &ExtSchedule) -> Result<(), String> {
    if schedule.failure(1).is_none() {
        return Err("schedule does not fail, so minimality is vacuous".to_string());
    }
    for candidate in removal_candidates(schedule) {
        if candidate.validate().is_err() {
            continue;
        }
        if let Some(f) = candidate.failure(1) {
            return Err(format!(
                "not minimal: a reduced schedule ({} fault(s), {} garbler(s), {} link drop(s)) still fails: {f}",
                candidate.spec.fault_count(),
                candidate.garble.len(),
                candidate.spec.link_drops.len(),
            ));
        }
    }
    Ok(())
}

/// Strict removals only: the reductions whose failure would contradict
/// 1-minimality.
fn removal_candidates(schedule: &ExtSchedule) -> Vec<ExtSchedule> {
    let mut out = Vec::new();

    // Drop a whole faulty processor, taking its link drops with it.
    for i in 0..schedule.spec.faults.len() {
        let mut c = schedule.clone();
        let (pid, _) = c.spec.faults.remove(i);
        c.spec.link_drops.retain(|d| d.from != pid);
        out.push(c);
    }

    // Drop a garbler.
    for i in 0..schedule.garble.len() {
        let mut c = schedule.clone();
        c.garble.remove(i);
        out.push(c);
    }

    // Remove a single link drop.
    for j in 0..schedule.spec.link_drops.len() {
        let mut c = schedule.clone();
        c.spec.link_drops.remove(j);
        out.push(c);
    }

    // Remove a single omission target or equivocation recipient.
    for (i, (_, behavior)) in schedule.spec.faults.iter().enumerate() {
        match behavior {
            FaultBehavior::OmitTo { targets } => {
                for k in 0..targets.len() {
                    let mut reduced = targets.clone();
                    reduced.remove(k);
                    let mut c = schedule.clone();
                    c.spec.faults[i].1 = if reduced.is_empty() {
                        FaultBehavior::Passive
                    } else {
                        FaultBehavior::OmitTo { targets: reduced }
                    };
                    out.push(c);
                }
            }
            FaultBehavior::Equivocate { ones } => {
                for k in 0..ones.len() {
                    let mut reduced = ones.clone();
                    reduced.remove(k);
                    let mut c = schedule.clone();
                    c.spec.faults[i].1 = FaultBehavior::Equivocate { ones: reduced };
                    out.push(c);
                }
            }
            _ => {}
        }
    }
    out
}

fn candidates(schedule: &ExtSchedule) -> Vec<ExtSchedule> {
    let mut out = removal_candidates(schedule);

    // Delay a crash by one phase. Capped at the dissemination phase count
    // (the longest stage), so the headroom measure strictly decreases.
    for (i, (_, behavior)) in schedule.spec.faults.iter().enumerate() {
        if let FaultBehavior::CrashAt { phase } = behavior {
            if *phase < DISSEMINATION_PHASES {
                let mut c = schedule.clone();
                c.spec.faults[i].1 = FaultBehavior::CrashAt { phase: phase + 1 };
                out.push(c);
            }
        }
    }

    // Halve the payload — smaller counterexamples replay faster and often
    // expose that the fault pattern, not the payload, is the trigger.
    if schedule.payload_len >= 2 {
        let mut c = schedule.clone();
        c.payload_len /= 2;
        out.push(c);
    }
    out
}

/// Parameters of one extension-family exploration.
#[derive(Clone, Debug)]
pub struct ExtExploreOptions {
    /// Number of processors.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Payload byte-stream seed.
    pub payload_seed: u64,
    /// Run seed (keys, inner-BA seeds, random-scenario sampling).
    pub seed: u64,
    /// Inner-BA target for digest agreement.
    pub inner: String,
    /// Inner-BA target for the availability vote.
    pub vote_inner: String,
    /// Seeded random scenarios appended to the standard family.
    pub extra_random: usize,
    /// Worker threads for the outer fan-out (inner runs sequential;
    /// results identical for any value).
    pub threads: usize,
}

impl Default for ExtExploreOptions {
    fn default() -> Self {
        ExtExploreOptions {
            n: 16,
            t: 2,
            payload_len: 2_048,
            payload_seed: 1,
            seed: 0,
            inner: "ds-broadcast".to_string(),
            vote_inner: "ds-relay".to_string(),
            extra_random: 8,
            threads: 1,
        }
    }
}

/// One discovered ext violation: the schedule as found and its shrunk form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExtViolation {
    /// The schedule as the explorer found it.
    pub schedule: ExtSchedule,
    /// What failed (split outcome, wrong payload, unexcused abort).
    pub failure: String,
    /// The greedily-minimized counterexample.
    pub minimized: ExtSchedule,
    /// The minimized schedule's failure.
    pub minimized_failure: String,
}

/// Result of one extension-family exploration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExtExploreReport {
    /// How many scenarios actually ran.
    pub explored: usize,
    /// Violations in scenario order.
    pub violations: Vec<ExtViolation>,
}

/// Runs the [`standard_scenarios`] family (plus `extra_random` seeded
/// random schedules) against the extension layer, shrinking every
/// violation — the ext analogue of [`crate::explore::explore`]. Results
/// are byte-identical at any thread count.
pub fn explore_ext(options: &ExtExploreOptions) -> ExtExploreReport {
    let schedules: Vec<ExtSchedule> =
        standard_scenarios(options.n, options.t, options.seed, options.extra_random)
            .into_iter()
            .map(|scenario| bind(options, scenario))
            .filter(|s| s.validate().is_ok())
            .collect();
    let explored = schedules.len();
    let failures: Vec<Option<String>> = run_sweep(&schedules, options.threads, |_, s| s.failure(1));
    let violating: Vec<(ExtSchedule, String)> = schedules
        .into_iter()
        .zip(failures)
        .filter_map(|(schedule, failure)| failure.map(|f| (schedule, f)))
        .collect();
    let minimized: Vec<(ExtSchedule, String)> =
        run_sweep(&violating, options.threads, |_, (schedule, _)| {
            shrink_ext(schedule)
        });
    let violations = violating
        .into_iter()
        .zip(minimized)
        .map(
            |((schedule, failure), (minimized, minimized_failure))| ExtViolation {
                schedule,
                failure,
                minimized,
                minimized_failure,
            },
        )
        .collect();
    ExtExploreReport {
        explored,
        violations,
    }
}

fn bind(options: &ExtExploreOptions, scenario: ExtScenario) -> ExtSchedule {
    ExtSchedule {
        n: options.n,
        t: options.t,
        payload_len: options.payload_len,
        payload_seed: options.payload_seed,
        seed: options.seed,
        inner: options.inner.clone(),
        vote_inner: options.vote_inner.clone(),
        spec: scenario.spec,
        garble: scenario.garble,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_sim::schedule::LinkDrop;

    fn sample() -> ExtSchedule {
        ExtSchedule {
            n: 4,
            t: 1,
            payload_len: 96,
            payload_seed: 9,
            seed: 0,
            inner: "ds-weak-relay-threshold".to_string(),
            vote_inner: "ds-relay".to_string(),
            spec: ScheduleSpec {
                faults: vec![(
                    ProcessId(0),
                    FaultBehavior::OmitTo {
                        targets: vec![ProcessId(2)],
                    },
                )],
                link_drops: vec![],
            },
            garble: vec![],
        }
    }

    #[test]
    fn schedule_roundtrips_compact_and_pretty() {
        let mut schedule = sample();
        schedule.garble = vec![ProcessId(3)];
        schedule.spec.faults.clear();
        schedule.spec.link_drops = vec![LinkDrop {
            phase: 2,
            from: ProcessId(3),
            to: ProcessId(1),
        }];
        let compact = ExtSchedule::from_text(&schedule.to_json().render()).unwrap();
        assert_eq!(compact, schedule);
        let pretty = ExtSchedule::from_text(&schedule.to_json().pretty()).unwrap();
        assert_eq!(pretty, schedule);
    }

    #[test]
    fn malformed_json_is_rejected_with_context() {
        assert!(ExtSchedule::from_text("{}").unwrap_err().contains("family"));
        let no_garble = sample()
            .to_json()
            .render()
            .replace("\"garble\":[]", "\"x\":[]");
        assert!(ExtSchedule::from_text(&no_garble)
            .unwrap_err()
            .contains("garble"));
        let bad_inner = sample();
        let mut unknown = bad_inner.clone();
        unknown.inner = "no-such-target".to_string();
        assert!(unknown.validate().unwrap_err().contains("unknown"));
    }

    #[test]
    fn payload_is_seed_deterministic() {
        let schedule = sample();
        assert_eq!(schedule.payload(), schedule.payload());
        assert_eq!(schedule.payload().len(), 96);
        let mut other = schedule.clone();
        other.payload_seed ^= 1;
        assert_ne!(schedule.payload(), other.payload());
    }

    #[test]
    fn splitting_schedule_fails_and_is_minimal() {
        let schedule = sample();
        let failure = schedule.failure(1).expect("the weak inner splits outcomes");
        assert!(
            failure.contains("disagree on the outcome"),
            "got: {failure}"
        );
        assert_minimal_ext(&schedule).unwrap();
    }

    #[test]
    fn shrink_removes_bloat_and_is_deterministic() {
        // Bloat the splitting core with an irrelevant link drop and an
        // extra omission target; shrinking must strip both and may halve
        // the payload — but never lose the failure.
        let mut bloated = sample();
        bloated.spec.faults[0].1 = FaultBehavior::OmitTo {
            targets: vec![ProcessId(2), ProcessId(3)],
        };
        bloated.spec.link_drops = vec![LinkDrop {
            phase: 6,
            from: ProcessId(0),
            to: ProcessId(1),
        }];
        assert!(bloated.failure(1).is_some(), "precondition: bloated fails");
        let (minimal, failure) = shrink_ext(&bloated);
        assert!(!failure.is_empty());
        assert_eq!(minimal.spec.fault_count(), 1);
        assert!(minimal.spec.link_drops.is_empty(), "drop was irrelevant");
        assert!(minimal.payload_len <= bloated.payload_len);
        assert_minimal_ext(&minimal).unwrap();
        assert_eq!(shrink_ext(&bloated), (minimal, failure), "deterministic");
    }

    #[test]
    fn sound_inner_explores_clean_at_any_thread_count() {
        let options = ExtExploreOptions {
            n: 4,
            t: 1,
            payload_len: 64,
            extra_random: 4,
            ..ExtExploreOptions::default()
        };
        let report = explore_ext(&options);
        assert!(
            report.explored > 10,
            "family too small: {}",
            report.explored
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let threaded = explore_ext(&ExtExploreOptions {
            threads: 4,
            ..options
        });
        assert_eq!(report, threaded, "exploration is thread-count invariant");
    }

    #[test]
    fn weak_inner_yields_minimized_violations() {
        let report = explore_ext(&ExtExploreOptions {
            n: 4,
            t: 1,
            payload_len: 96,
            payload_seed: 9,
            inner: "ds-weak-relay-threshold".to_string(),
            extra_random: 2,
            ..ExtExploreOptions::default()
        });
        assert!(
            !report.violations.is_empty(),
            "the weak inner target must split some ext outcome"
        );
        for violation in &report.violations {
            assert!(
                violation.minimized.spec.fault_count() + violation.minimized.garble.len()
                    <= violation.schedule.spec.fault_count() + violation.schedule.garble.len(),
                "shrinking never grows the schedule"
            );
            assert_eq!(
                violation.minimized.failure(1),
                Some(violation.minimized_failure.clone()),
                "the minimized schedule still fails with the recorded string"
            );
        }
    }
}
