//! A minimal hand-rolled JSON value, parser and printer.
//!
//! The workspace builds fully offline, so `serde_json` is not an option.
//! This module implements exactly the subset the regression corpus needs,
//! with one deliberate restriction: numbers are **unsigned integers only**
//! ([`Json::Int`] holds a `u64`). Floats are rejected at parse time, which
//! guarantees that 64-bit seeds round-trip exactly — a float-backed number
//! type would silently lose precision above 2⁵³ and corrupt replay seeds.

use std::fmt::Write as _;

/// A JSON value restricted to the corpus vocabulary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form supported).
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs — insertion order is preserved
    /// so rendering is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an [`Json::Int`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation, for committed corpus files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, inner_pad) = match indent {
            Some(width) => (
                "\n",
                " ".repeat(width * depth),
                " ".repeat(width * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&inner_pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&inner_pad);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses `text` into a [`Json`] value.
///
/// # Errors
/// A description with the byte offset of the first syntax error. Negative
/// numbers, fractions and exponents are rejected (see module docs).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.integer(),
            Some(b'-') => Err(format!(
                "negative number at byte {} (corpus numbers are unsigned)",
                self.pos
            )),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn integer(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (floats cannot carry 64-bit seeds)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<u64>()
            .map(Json::Int)
            .map_err(|_| format!("integer out of u64 range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact_and_pretty() {
        let value = Json::Obj(vec![
            ("name".into(), Json::Str("ds-weak".into())),
            ("seed".into(), Json::Int(u64::MAX)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Arr(vec![])]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&value.render()).unwrap(), value);
        assert_eq!(parse(&value.pretty()).unwrap(), value);
    }

    #[test]
    fn u64_seeds_roundtrip_exactly() {
        // The motivating case: a seed above 2^53, where a float-backed
        // number type would lose the low bits.
        for seed in [u64::MAX, (1u64 << 53) + 1, 0x1234_5678_9abc_def0] {
            let text = Json::Int(seed).render();
            assert_eq!(parse(&text).unwrap().as_u64(), Some(seed));
        }
    }

    #[test]
    fn floats_and_negatives_are_rejected() {
        assert!(parse("1.5").unwrap_err().contains("non-integer"));
        assert!(parse("1e9").unwrap_err().contains("non-integer"));
        assert!(parse("-3").unwrap_err().contains("negative"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let tricky = "quote \" slash \\ newline \n tab \t unicode \u{263a}";
        let text = Json::Str(tricky.into()).render();
        assert_eq!(parse(&text).unwrap().as_str(), Some(tricky));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[] trailing").unwrap_err().contains("trailing"));
        assert!(parse("\"open").unwrap_err().contains("unterminated"));
    }

    #[test]
    fn accessors_select_by_type() {
        let obj = parse("{\"a\": 3, \"b\": [true], \"c\": \"x\"}").unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(
            obj.get("b").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(obj.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(
            obj.get("b").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert_eq!(obj.get("missing"), None);
        assert_eq!(obj.get("a").and_then(Json::as_str), None);
    }
}
