//! The serializable fault schedule: a [`ScheduleSpec`] bound to a named
//! check target and its run parameters, with a JSON form stable enough to
//! commit as a regression corpus.

use crate::json::{self, Json};
use ba_algos::checkable::{CheckConfig, CheckTarget};
use ba_crypto::{ProcessId, Value};
use ba_sim::schedule::{FaultBehavior, LinkDrop, ScheduleSpec};

/// A complete, replayable check case: the target, its parameters, and the
/// fault schedule to drive it with.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultSchedule {
    /// Name of the [`CheckTarget`] this schedule runs against.
    pub target: String,
    /// Number of processors.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// The transmitter's input value (binary).
    pub value: u64,
    /// Key-registry seed the run uses.
    pub seed: u64,
    /// The fault schedule itself.
    pub spec: ScheduleSpec,
}

impl FaultSchedule {
    /// The [`CheckConfig`] replaying this schedule with `threads` worker
    /// threads (results are identical for any value).
    pub fn config(&self, threads: usize) -> CheckConfig {
        CheckConfig::new(
            self.n,
            self.t,
            Value(self.value),
            self.seed,
            threads,
            self.spec.clone(),
        )
    }

    /// Resolves and validates this schedule's target.
    ///
    /// # Errors
    /// Unknown target name, or a schedule the target rejects.
    pub fn resolve(&self) -> Result<&'static CheckTarget, String> {
        let target = ba_algos::checkable::find_target(&self.target)
            .ok_or_else(|| format!("unknown check target {:?}", self.target))?;
        target.validate(&self.config(1))?;
        Ok(target)
    }

    /// The JSON object form (see the corpus format in `DESIGN.md`).
    pub fn to_json(&self) -> Json {
        let (faults, drops) = spec_to_json(&self.spec);
        Json::Obj(vec![
            ("target".to_string(), Json::Str(self.target.clone())),
            ("n".to_string(), Json::Int(self.n as u64)),
            ("t".to_string(), Json::Int(self.t as u64)),
            ("value".to_string(), Json::Int(self.value)),
            ("seed".to_string(), Json::Int(self.seed)),
            ("faults".to_string(), faults),
            ("link_drops".to_string(), drops),
        ])
    }

    /// Parses the object form produced by [`FaultSchedule::to_json`].
    ///
    /// # Errors
    /// A description of the first missing or ill-typed field.
    pub fn from_json(value: &Json) -> Result<FaultSchedule, String> {
        let target = value
            .get("target")
            .and_then(Json::as_str)
            .ok_or("schedule missing string field \"target\"")?
            .to_string();
        let n = field_u64(value, "n")? as usize;
        let t = field_u64(value, "t")? as usize;
        let val = field_u64(value, "value")?;
        let seed = field_u64(value, "seed")?;
        Ok(FaultSchedule {
            target,
            n,
            t,
            value: val,
            seed,
            spec: spec_from_json(value)?,
        })
    }

    /// Parses a schedule from JSON text.
    ///
    /// # Errors
    /// Syntax errors from the parser or structural errors from
    /// [`FaultSchedule::from_json`].
    pub fn from_text(text: &str) -> Result<FaultSchedule, String> {
        FaultSchedule::from_json(&json::parse(text)?)
    }
}

/// Serializes a bare [`ScheduleSpec`] into its `"faults"` and
/// `"link_drops"` JSON arrays — shared between the classic target family
/// and the extension family (see [`crate::ext`]).
pub(crate) fn spec_to_json(spec: &ScheduleSpec) -> (Json, Json) {
    let faults = spec
        .faults
        .iter()
        .map(|(p, behavior)| {
            let mut pairs = vec![
                ("process".to_string(), Json::Int(u64::from(p.0))),
                (
                    "behavior".to_string(),
                    Json::Str(behavior.tag().to_string()),
                ),
            ];
            match behavior {
                FaultBehavior::Silent | FaultBehavior::Passive => {}
                FaultBehavior::CrashAt { phase } => {
                    pairs.push(("phase".to_string(), Json::Int(*phase as u64)));
                }
                FaultBehavior::OmitTo { targets } => {
                    pairs.push(("targets".to_string(), ids_to_json(targets)));
                }
                FaultBehavior::Equivocate { ones } => {
                    pairs.push(("ones".to_string(), ids_to_json(ones)));
                }
            }
            Json::Obj(pairs)
        })
        .collect();
    let drops = spec
        .link_drops
        .iter()
        .map(|d| {
            Json::Obj(vec![
                ("phase".to_string(), Json::Int(d.phase as u64)),
                ("from".to_string(), Json::Int(u64::from(d.from.0))),
                ("to".to_string(), Json::Int(u64::from(d.to.0))),
            ])
        })
        .collect();
    (Json::Arr(faults), Json::Arr(drops))
}

/// Parses the `"faults"` / `"link_drops"` arrays back out of a schedule
/// object (inverse of [`spec_to_json`]).
pub(crate) fn spec_from_json(value: &Json) -> Result<ScheduleSpec, String> {
    let mut faults = Vec::new();
    for entry in value
        .get("faults")
        .and_then(Json::as_arr)
        .ok_or("schedule missing array field \"faults\"")?
    {
        let process = ProcessId(field_u64(entry, "process")? as u32);
        let tag = entry
            .get("behavior")
            .and_then(Json::as_str)
            .ok_or("fault missing string field \"behavior\"")?;
        let behavior = match tag {
            "silent" => FaultBehavior::Silent,
            "passive" => FaultBehavior::Passive,
            "crash-at" => FaultBehavior::CrashAt {
                phase: field_u64(entry, "phase")? as usize,
            },
            "omit-to" => FaultBehavior::OmitTo {
                targets: ids_from_json(entry, "targets")?,
            },
            "equivocate" => FaultBehavior::Equivocate {
                ones: ids_from_json(entry, "ones")?,
            },
            other => return Err(format!("unknown fault behavior {other:?}")),
        };
        faults.push((process, behavior));
    }
    let mut link_drops = Vec::new();
    for entry in value
        .get("link_drops")
        .and_then(Json::as_arr)
        .ok_or("schedule missing array field \"link_drops\"")?
    {
        link_drops.push(LinkDrop {
            phase: field_u64(entry, "phase")? as usize,
            from: ProcessId(field_u64(entry, "from")? as u32),
            to: ProcessId(field_u64(entry, "to")? as u32),
        });
    }
    Ok(ScheduleSpec { faults, link_drops })
}

pub(crate) fn field_u64(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

pub(crate) fn ids_to_json(ids: &[ProcessId]) -> Json {
    Json::Arr(ids.iter().map(|p| Json::Int(u64::from(p.0))).collect())
}

pub(crate) fn ids_from_json(entry: &Json, key: &str) -> Result<Vec<ProcessId>, String> {
    entry
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("fault missing array field {key:?}"))?
        .iter()
        .map(|item| {
            item.as_u64()
                .map(|v| ProcessId(v as u32))
                .ok_or_else(|| format!("non-integer id in {key:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::testkit::run_cases;

    fn sample() -> FaultSchedule {
        FaultSchedule {
            target: "ds-weak-relay-threshold".to_string(),
            n: 4,
            t: 1,
            value: 1,
            seed: 0,
            spec: ScheduleSpec {
                faults: vec![(
                    ProcessId(0),
                    FaultBehavior::OmitTo {
                        targets: vec![ProcessId(2)],
                    },
                )],
                link_drops: vec![],
            },
        }
    }

    #[test]
    fn sample_roundtrips_and_resolves() {
        let schedule = sample();
        let text = schedule.to_json().pretty();
        let back = FaultSchedule::from_text(&text).unwrap();
        assert_eq!(back, schedule);
        let target = back.resolve().unwrap();
        assert_eq!(target.name, "ds-weak-relay-threshold");
        assert!(!target.sound);
    }

    #[test]
    fn every_behavior_roundtrips() {
        run_cases(24, 0x5EED, |gen| {
            let n = gen.usize_in(3, 8);
            let behaviors = [
                FaultBehavior::Silent,
                FaultBehavior::Passive,
                FaultBehavior::CrashAt {
                    phase: gen.usize_in(1, 6),
                },
                FaultBehavior::OmitTo {
                    targets: vec![ProcessId(gen.u32_in(1, n as u32))],
                },
                FaultBehavior::Equivocate {
                    ones: vec![ProcessId(gen.u32_in(1, n as u32))],
                },
            ];
            let pick = gen.usize_in(0, behaviors.len());
            let schedule = FaultSchedule {
                target: "ds-broadcast".to_string(),
                n,
                t: gen.usize_in(1, n.saturating_sub(2).max(2)),
                value: u64::from(gen.bool()),
                seed: gen.u64(),
                spec: ScheduleSpec {
                    faults: vec![(ProcessId(0), behaviors[pick].clone())],
                    link_drops: vec![LinkDrop {
                        phase: gen.usize_in(1, 5),
                        from: ProcessId(0),
                        to: ProcessId(gen.u32_in(1, n as u32)),
                    }],
                },
            };
            let compact = FaultSchedule::from_text(&schedule.to_json().render()).unwrap();
            assert_eq!(compact, schedule);
        });
    }

    #[test]
    fn resolve_rejects_unknown_target_and_bad_spec() {
        let mut schedule = sample();
        schedule.target = "no-such-target".to_string();
        assert!(schedule.resolve().unwrap_err().contains("unknown"));

        let mut overbudget = sample();
        overbudget.spec.faults = vec![
            (ProcessId(0), FaultBehavior::Silent),
            (ProcessId(1), FaultBehavior::Silent),
        ];
        assert!(overbudget.resolve().is_err(), "t = 1 allows one fault");
    }

    #[test]
    fn malformed_json_is_rejected_with_context() {
        assert!(FaultSchedule::from_text("{}")
            .unwrap_err()
            .contains("target"));
        let missing_faults = "{\"target\":\"ds-broadcast\",\"n\":4,\"t\":1,\"value\":1,\"seed\":0}";
        assert!(FaultSchedule::from_text(missing_faults)
            .unwrap_err()
            .contains("faults"));
        let bad_behavior = sample().to_json().render().replace("omit-to", "explode");
        assert!(FaultSchedule::from_text(&bad_behavior)
            .unwrap_err()
            .contains("explode"));
    }
}
