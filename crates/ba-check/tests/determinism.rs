//! The checker's determinism contract: same `(target, n, t, value, seed,
//! budget, strategy)` must yield an identical report — violation list and
//! minimized counterexamples included — at any worker-thread count.

use ba_check::{explore, find_target, ExploreOptions, Strategy};

fn options(target: &'static str, strategy: Strategy, threads: usize) -> ExploreOptions {
    ExploreOptions {
        target: find_target(target).expect("registered target"),
        n: 4,
        t: 1,
        value: 1,
        seed: 0xBA5E,
        budget: 120,
        threads,
        strategy,
    }
}

#[test]
fn exhaustive_reports_are_identical_at_one_and_four_threads() {
    let weak_1 = explore(&options("ds-weak-relay-threshold", Strategy::Exhaustive, 1));
    let weak_4 = explore(&options("ds-weak-relay-threshold", Strategy::Exhaustive, 4));
    assert_eq!(weak_1, weak_4);
    assert!(
        !weak_1.violations.is_empty(),
        "the weakened target must yield violations for the comparison to mean anything"
    );
    for violation in &weak_1.violations {
        assert!(!violation.minimized.spec.faults.is_empty());
    }
}

#[test]
fn random_reports_are_identical_at_one_and_four_threads() {
    for target in ["ds-broadcast", "ds-relay", "algorithm1"] {
        let opts = |threads| ExploreOptions {
            n: if target == "algorithm1" { 3 } else { 4 },
            ..options(target, Strategy::Random, threads)
        };
        let one = explore(&opts(1));
        let four = explore(&opts(4));
        assert_eq!(one, four, "{target} diverged across thread counts");
        assert!(one.explored > 0, "{target} sampled nothing");
        assert!(
            one.violations.is_empty(),
            "{target} is sound but violated: {:?}",
            one.violations[0].failure
        );
    }
}

#[test]
fn reports_depend_on_the_seed_only_through_sampling() {
    let base = explore(&options("ds-weak-relay-threshold", Strategy::Exhaustive, 2));
    let reseeded = explore(&ExploreOptions {
        seed: 0xF00D,
        ..options("ds-weak-relay-threshold", Strategy::Exhaustive, 2)
    });
    // Exhaustive enumeration explores the same spec sequence regardless of
    // seed; only the bound key-registry seed differs.
    assert_eq!(base.explored, reseeded.explored);
    assert_eq!(base.violations.len(), reseeded.violations.len());
}
