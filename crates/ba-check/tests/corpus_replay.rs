//! The committed regression corpus: the explorer must rediscover the
//! known-bad schedule for the weakened Dolev–Strong variant, every
//! committed entry must replay with its exact failure string, and every
//! committed counterexample must be 1-minimal.

use ba_check::corpus::{self, default_corpus_path};
use ba_check::{explore, find_target, CorpusCase, ExploreOptions, Strategy};
use std::path::Path;

#[test]
fn explorer_rediscovers_the_weakened_relay_bug() {
    let report = explore(&ExploreOptions {
        target: find_target("ds-weak-relay-threshold").unwrap(),
        n: 4,
        t: 1,
        value: 1,
        seed: 0,
        budget: 200,
        threads: 2,
        strategy: Strategy::Exhaustive,
    });
    assert!(
        !report.violations.is_empty(),
        "bounded enumeration must expose the off-by-one relay threshold"
    );
    // At least one violation shrinks to the canonical splitting core: a
    // single faulty transmitter omitting to a single processor.
    assert!(
        report.violations.iter().any(|v| {
            v.minimized.spec.fault_count() == 1 && v.minimized.spec.link_drops.is_empty()
        }),
        "no violation shrank to a single-fault core"
    );
}

#[test]
fn committed_corpus_covers_both_families() {
    let entries = corpus::load(Path::new(default_corpus_path())).unwrap();
    assert!(
        entries
            .iter()
            .any(|e| matches!(e.case, CorpusCase::Target(_))),
        "the corpus ships a classic target-family entry"
    );
    assert!(
        entries.iter().any(|e| matches!(e.case, CorpusCase::Ext(_))),
        "the corpus ships an extension-family entry"
    );
}

#[test]
fn committed_corpus_replays_with_exact_failures() {
    let entries = corpus::load(Path::new(default_corpus_path())).unwrap();
    assert!(!entries.is_empty(), "the corpus ships at least one entry");
    for entry in &entries {
        corpus::replay(entry, 1).unwrap();
        // Replay is thread-count independent like everything else.
        corpus::replay(entry, 4).unwrap();
    }
}

#[test]
fn committed_counterexamples_are_one_minimal() {
    let entries = corpus::load(Path::new(default_corpus_path())).unwrap();
    for entry in &entries {
        // Removing any single faulty processor or omission target from the
        // minimized schedule removes the violation.
        corpus::replay_minimal(entry, 1).unwrap();
    }
}

#[test]
fn corpus_schedules_are_harmless_on_the_sound_variant() {
    let entries = corpus::load(Path::new(default_corpus_path())).unwrap();
    for entry in &entries {
        // Every committed failure is a bug in the weakened variant, not in
        // the schedule: swapping in the sound inner target must clear it,
        // in both families.
        match &entry.case {
            CorpusCase::Target(schedule) => {
                let mut on_sound = schedule.clone();
                on_sound.target = "ds-broadcast".to_string();
                let target = on_sound.resolve().unwrap();
                assert_eq!(
                    target.run(&on_sound.config(1)).failure(),
                    None,
                    "the same schedule must not break the correct relay threshold"
                );
            }
            CorpusCase::Ext(schedule) => {
                let mut on_sound = schedule.clone();
                on_sound.inner = "ds-broadcast".to_string();
                assert_eq!(
                    on_sound.failure(1),
                    None,
                    "the same ext schedule must not split outcomes under a sound inner target"
                );
            }
        }
    }
}
