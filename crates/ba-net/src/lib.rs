//! A multi-threaded message-passing runtime for the Byzantine Agreement
//! actors, with an *unreliable* wire underneath.
//!
//! The lock-step engine in `ba-sim` realizes the paper's synchronous
//! model: every message sent in phase `k` arrives at phase `k + 1`,
//! unconditionally. This crate asks what it takes to *earn* that
//! abstraction on an unreliable substrate — and what to do when it cannot
//! be earned:
//!
//! * [`chaos`] — seeded per-link unreliability profiles (loss, ack loss,
//!   duplication, delay, reordering), the runtime's counterpart of the
//!   fault-schedule vocabulary in [`ba_sim::schedule`];
//! * [`wire`](crate::runtime) — virtual-tick delivery with bounded
//!   retransmission, exponential backoff, acks and receiver-side dedup;
//! * [`runtime`] — actor chunks on real worker threads behind mpsc
//!   channels, a coordinator phase synchronizer with a wall-clock
//!   watchdog, and graceful degradation: suspected senders are tolerated
//!   while the observable fault set fits the budget `t`, and the run
//!   aborts with a structured [`DegradationVerdict`] the moment it
//!   doesn't — it never panics and never returns untrustworthy decisions;
//! * [`verdict`] — the structured failure vocabulary ([`NetStats`],
//!   [`FailedLink`], [`DegradationVerdict`]);
//! * [`harness`] — drives any `ba-algos` checkable target through the
//!   runtime and proves that, under a reliable wire, decisions and
//!   [`Metrics`](ba_sim::Metrics) are byte-identical to
//!   [`ba_sim::Simulation`] at any worker-thread count;
//! * [`svc`] — the multi-instance service (`ba-svc`): a session-based
//!   open-loop API (`session`/`submit`/`tick`/`try_outcome`/`drain`) over
//!   many concurrent BA instances with pipelined phases on one wire,
//!   per-link batched flushes, a fleet-shared verifier cache, per-instance
//!   degradation verdicts, and explicit admission control — a bounded
//!   queue with reject / shed-oldest / block-with-deadline backpressure,
//!   every decision recorded as a structured [`AdmissionVerdict`].
//!
//! # Example
//!
//! ```
//! use ba_crypto::{ProcessId, Value};
//! use ba_net::{ChaosProfile, NetConfig, NetRuntime};
//! use ba_sim::actor::{Actor, Envelope, Outbox};
//!
//! #[derive(Debug)]
//! struct Sender(Value);
//! #[derive(Debug)]
//! struct Receiver(Option<Value>);
//!
//! impl Actor<Value> for Sender {
//!     fn step(&mut self, phase: usize, _inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
//!         if phase == 1 {
//!             out.send(ProcessId(1), self.0);
//!         }
//!     }
//!     fn decision(&self) -> Option<Value> { Some(self.0) }
//! }
//!
//! impl Actor<Value> for Receiver {
//!     fn step(&mut self, _phase: usize, inbox: &[Envelope<Value>], _out: &mut Outbox<Value>) {
//!         if let Some(env) = inbox.first() {
//!             self.0 = Some(env.payload);
//!         }
//!     }
//!     fn decision(&self) -> Option<Value> { self.0 }
//! }
//!
//! let runtime = NetRuntime::new(
//!     vec![
//!         Box::new(Sender(Value::ONE)) as Box<dyn Actor<Value>>,
//!         Box::new(Receiver(None)),
//!     ],
//!     NetConfig { threads: 2, ..NetConfig::default() },
//! )
//! .with_chaos(ChaosProfile::jitter(7));
//! let outcome = runtime.run(2).expect("jitter never exceeds the budget");
//! assert_eq!(outcome.decisions, vec![Some(Value::ONE), Some(Value::ONE)]);
//! assert_eq!(outcome.metrics.messages_by_correct, 1);
//! ```

pub mod chaos;
pub mod harness;
pub mod runtime;
pub mod svc;
pub mod verdict;
mod wire;

pub use chaos::{ChaosProfile, LinkChaos};
pub use harness::{
    check_equivalence, run_target, run_target_multiplexed, MultiplexRun, NetRun, NetRunError,
};
pub use runtime::{NetConfig, NetOutcome, NetRuntime};
pub use svc::{
    instance_seed, AdmissionPolicy, BaService, InstanceOutcome, InstanceRun, InstanceSpec,
    PoissonArrivals, SvcConfig, SvcReport, SvcSession, TaggedFrame, TicketOutcome, TicketStatus,
};
pub use verdict::{
    AdmissionError, AdmissionVerdict, DegradationReason, DegradationVerdict, FailedLink, NetStats,
    ShedOutcome, Ticket,
};
