//! Structured outcomes of a runtime run: wire statistics, the
//! graceful-degradation verdict emitted when the fault budget is exceeded,
//! and the admission vocabulary of the open-loop service layer
//! ([`Ticket`], [`AdmissionVerdict`], [`AdmissionError`], [`ShedOutcome`]).

use ba_crypto::ProcessId;
use core::fmt;

/// Handle for one submission accepted by a service session
/// ([`SvcSession::submit`](crate::svc::SvcSession::submit)): pass it back
/// to [`try_outcome`](crate::svc::SvcSession::try_outcome) to poll for the
/// instance's settlement. Tickets are dense from 0 in submission order and
/// double as the instance id the chaos seed is derived from
/// ([`instance_seed`](crate::svc::instance_seed)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ticket(pub u64);

impl fmt::Display for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Why a submission was not accepted. Admission failures are ordinary
/// values, never panics: the caller decides whether to retry, back off, or
/// drop the work — the session never decides for it and never drops
/// silently.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The admission queue is at capacity and the session's policy is
    /// [`AdmissionPolicy::Reject`](crate::svc::AdmissionPolicy::Reject).
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The policy was
    /// [`AdmissionPolicy::BlockWithDeadline`](crate::svc::AdmissionPolicy::BlockWithDeadline)
    /// and no queue slot freed within the deadline.
    DeadlineExpired {
        /// Service ticks the submission waited before giving up.
        waited_ticks: u64,
        /// The configured queue capacity that stayed full throughout.
        capacity: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            AdmissionError::DeadlineExpired {
                waited_ticks,
                capacity,
            } => write!(
                f,
                "admission deadline expired after {waited_ticks} ticks \
                 (queue capacity {capacity} never freed)"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// What one [`submit`](crate::svc::SvcSession::submit) call did — the
/// structured audit record the session appends to its admission log for
/// *every* submission, accepted or not. Together with [`ShedOutcome`] this
/// makes the backpressure account exact: every ticket ever issued is
/// settled, shed, or still in the session; nothing is dropped silently.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum AdmissionVerdict {
    /// The submission was enqueued with free capacity to spare.
    Enqueued {
        /// The ticket issued.
        ticket: Ticket,
        /// Queue depth right after the enqueue (including this ticket).
        depth: usize,
    },
    /// The queue was full; the oldest queued ticket was shed to make room
    /// (policy [`ShedOldest`](crate::svc::AdmissionPolicy::ShedOldest)).
    /// The victim's [`ShedOutcome`] is recorded in the session.
    EnqueuedAfterShed {
        /// The ticket issued to the new submission.
        ticket: Ticket,
        /// The queued ticket that was evicted to make room.
        victim: Ticket,
    },
    /// The queue was full; the submission waited inside `submit` while the
    /// session ticked, and a slot freed before the deadline (policy
    /// [`BlockWithDeadline`](crate::svc::AdmissionPolicy::BlockWithDeadline)).
    EnqueuedAfterWait {
        /// The ticket issued.
        ticket: Ticket,
        /// Service ticks executed while the submission waited.
        waited_ticks: u64,
    },
    /// The submission was refused; no ticket was issued. Mirrors the
    /// [`AdmissionError`] returned from `submit`.
    Refused {
        /// Why admission failed.
        error: AdmissionError,
        /// Queue depth at refusal time.
        depth: usize,
    },
}

impl AdmissionVerdict {
    /// The ticket this verdict issued, if any.
    pub fn ticket(&self) -> Option<Ticket> {
        match self {
            AdmissionVerdict::Enqueued { ticket, .. }
            | AdmissionVerdict::EnqueuedAfterShed { ticket, .. }
            | AdmissionVerdict::EnqueuedAfterWait { ticket, .. } => Some(*ticket),
            AdmissionVerdict::Refused { .. } => None,
        }
    }
}

impl fmt::Display for AdmissionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionVerdict::Enqueued { ticket, depth } => {
                write!(f, "{ticket} enqueued (depth {depth})")
            }
            AdmissionVerdict::EnqueuedAfterShed { ticket, victim } => {
                write!(f, "{ticket} enqueued, shed {victim}")
            }
            AdmissionVerdict::EnqueuedAfterWait {
                ticket,
                waited_ticks,
            } => write!(f, "{ticket} enqueued after {waited_ticks} ticks"),
            AdmissionVerdict::Refused { error, depth } => {
                write!(f, "refused at depth {depth}: {error}")
            }
        }
    }
}

/// The structured record of one queued instance evicted by a shed-oldest
/// admission — the backpressure analogue of [`DegradationVerdict`]: the
/// work was not done, and here is exactly when and why.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShedOutcome {
    /// The evicted ticket.
    pub ticket: Ticket,
    /// Service tick at which the victim was submitted.
    pub submitted_tick: u64,
    /// Service tick at which it was shed.
    pub shed_tick: u64,
    /// The ticket whose admission displaced it.
    pub displaced_by: Ticket,
}

impl fmt::Display for ShedOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shed at tick {} (submitted tick {}, displaced by {})",
            self.ticket, self.shed_tick, self.submitted_tick, self.displaced_by
        )
    }
}

/// One permanently failed link: the sender exhausted its retransmission
/// budget without the frame ever reaching the receiver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FailedLink {
    /// The phase whose frame was lost.
    pub phase: usize,
    /// The sending processor (the runtime attributes the fault here).
    pub from: ProcessId,
    /// The receiver that never got the frame.
    pub to: ProcessId,
    /// Transmission attempts made before giving up.
    pub attempts: u32,
}

impl fmt::Display for FailedLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase {} {} -> {} ({} attempts)",
            self.phase, self.from, self.to, self.attempts
        )
    }
}

/// Wire-level statistics for one run — the physical story underneath the
/// logical [`Metrics`](ba_sim::Metrics). Logical counts (one per message,
/// however many times it was retransmitted) live in `Metrics`; these
/// counters expose what the unreliable wire actually cost.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetStats {
    /// Logical frames delivered at least once.
    pub frames_delivered: u64,
    /// Logical frames never delivered (retries exhausted).
    pub frames_failed: u64,
    /// Physical transmission attempts (including retransmissions).
    pub physical_transmissions: u64,
    /// Retransmission attempts (physical minus first attempts).
    pub retransmissions: u64,
    /// Frame copies the receiver discarded as duplicates (wire duplication
    /// or retransmission after a lost ack).
    pub duplicates_suppressed: u64,
    /// Acks lost on the return path.
    pub acks_lost: u64,
    /// The largest number of virtual ticks any phase needed to settle.
    pub max_ticks_in_phase: u64,
    /// Wire sends issued: one per flush of a directed link. The runtime
    /// flushes every frame on its own (all solo); the service layer
    /// coalesces every instance's frames for one link into one flush.
    pub flushes: u64,
    /// Flushes that carried exactly one frame.
    pub solo_flushes: u64,
    /// Flushes that carried two or more frames (the coalescing win).
    pub batched_flushes: u64,
    /// Total frames carried across all flushes.
    pub coalesced_frames: u64,
    /// The largest number of frames any single flush carried.
    pub max_frames_per_flush: u64,
    /// Every permanently failed link, in detection order.
    pub failed_links: Vec<FailedLink>,
}

impl NetStats {
    /// Records one flush of a directed link carrying `frames` frames.
    pub fn note_flush(&mut self, frames: u64) {
        self.flushes += 1;
        self.coalesced_frames += frames;
        if frames > 1 {
            self.batched_flushes += 1;
        } else {
            self.solo_flushes += 1;
        }
        self.max_frames_per_flush = self.max_frames_per_flush.max(frames);
    }

    /// Records `count` flushes of one frame each — the runtime's
    /// one-wire-send-per-frame behaviour.
    pub fn note_solo_flushes(&mut self, count: u64) {
        self.flushes += count;
        self.solo_flushes += count;
        self.coalesced_frames += count;
        if count > 0 {
            self.max_frames_per_flush = self.max_frames_per_flush.max(1);
        }
    }

    /// Mean frames carried per flush (`0.0` before any flush).
    pub fn frames_per_flush(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.coalesced_frames as f64 / self.flushes as f64
        }
    }

    /// Folds `other`'s counters into `self`: sums everything summable,
    /// maxes the maxima, appends the failed links. The service layer uses
    /// this to aggregate per-instance wire statistics into one fleet view.
    pub fn absorb(&mut self, other: &NetStats) {
        self.frames_delivered += other.frames_delivered;
        self.frames_failed += other.frames_failed;
        self.physical_transmissions += other.physical_transmissions;
        self.retransmissions += other.retransmissions;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.acks_lost += other.acks_lost;
        self.max_ticks_in_phase = self.max_ticks_in_phase.max(other.max_ticks_in_phase);
        self.flushes += other.flushes;
        self.solo_flushes += other.solo_flushes;
        self.batched_flushes += other.batched_flushes;
        self.coalesced_frames += other.coalesced_frames;
        self.max_frames_per_flush = self.max_frames_per_flush.max(other.max_frames_per_flush);
        self.failed_links.extend(other.failed_links.iter().copied());
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delivered={} failed={} physical={} retx={} dups={} acks_lost={} max_ticks={} \
             flushes={} (solo={} batched={} frames/flush={:.2})",
            self.frames_delivered,
            self.frames_failed,
            self.physical_transmissions,
            self.retransmissions,
            self.duplicates_suppressed,
            self.acks_lost,
            self.max_ticks_in_phase,
            self.flushes,
            self.solo_flushes,
            self.batched_flushes,
            self.frames_per_flush()
        )
    }
}

/// Why the runtime gave up on the run.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum DegradationReason {
    /// More processors are observably faulty (scheduled plus suspected via
    /// failed links) than the budget `t` tolerates; continuing could let a
    /// correct-looking run decide wrongly, so the runtime refuses.
    FaultBudgetExceeded {
        /// Size of the union of scheduled-faulty and suspected processors.
        observed: usize,
        /// The budget `t` the run was configured with.
        budget: usize,
    },
    /// Frames were still undelivered when the phase's virtual-tick deadline
    /// expired — the synchrony assumption broke outright.
    DeadlineBlown {
        /// Frames that never settled.
        pending_frames: usize,
        /// The deadline that expired.
        deadline_ticks: u64,
    },
    /// A worker thread failed to answer the phase barrier within the
    /// wall-clock watchdog (stalled, dead, or its actor panicked).
    WorkerStalled {
        /// The watchdog timeout that expired, in milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationReason::FaultBudgetExceeded { observed, budget } => {
                write!(f, "fault budget exceeded: {observed} observed faults > t = {budget}")
            }
            DegradationReason::DeadlineBlown {
                pending_frames,
                deadline_ticks,
            } => write!(
                f,
                "phase deadline blown: {pending_frames} frames unsettled after {deadline_ticks} ticks"
            ),
            DegradationReason::WorkerStalled { waited_ms } => {
                write!(f, "worker stalled: no reply within {waited_ms} ms")
            }
        }
    }
}

/// The structured report the runtime emits instead of a result when it
/// aborts: which phase broke, why, which links failed, who is suspected,
/// and which workers (if any) stalled. The runtime's contract is that it
/// *never* panics and *never* returns decisions it cannot stand behind —
/// when the observable fault set outgrows the budget, this verdict is the
/// entire output.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DegradationVerdict {
    /// The phase during which the run was abandoned (1-based).
    pub phase: usize,
    /// What specifically broke.
    pub reason: DegradationReason,
    /// Processors suspected faulty from failed links (senders).
    pub suspected: Vec<ProcessId>,
    /// Every permanently failed link observed up to the abort.
    pub failed_links: Vec<FailedLink>,
    /// Indices of worker threads that missed the phase barrier.
    pub stalled_workers: Vec<usize>,
    /// Wire statistics accumulated up to the abort.
    pub stats: NetStats,
}

impl fmt::Display for DegradationVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "degraded at phase {}: {}", self.phase, self.reason)?;
        if !self.suspected.is_empty() {
            write!(f, "; suspected ")?;
            for (i, p) in self.suspected.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.failed_links.is_empty() {
            write!(f, "; failed links ")?;
            for (i, link) in self.failed_links.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "[{link}]")?;
            }
        }
        if !self.stalled_workers.is_empty() {
            write!(f, "; stalled workers {:?}", self.stalled_workers)?;
        }
        Ok(())
    }
}

impl std::error::Error for DegradationVerdict {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_display_names_phase_links_and_suspects() {
        let verdict = DegradationVerdict {
            phase: 3,
            reason: DegradationReason::FaultBudgetExceeded {
                observed: 2,
                budget: 1,
            },
            suspected: vec![ProcessId(1), ProcessId(2)],
            failed_links: vec![FailedLink {
                phase: 3,
                from: ProcessId(1),
                to: ProcessId(0),
                attempts: 5,
            }],
            stalled_workers: vec![],
            stats: NetStats::default(),
        };
        let text = verdict.to_string();
        assert!(text.contains("phase 3"), "{text}");
        assert!(text.contains("fault budget exceeded"), "{text}");
        assert!(text.contains("p1"), "{text}");
        assert!(text.contains("5 attempts"), "{text}");
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<DegradationVerdict>();
    }

    #[test]
    fn flush_counters_distinguish_solo_from_batched() {
        let mut stats = NetStats::default();
        stats.note_flush(1);
        stats.note_flush(3);
        stats.note_solo_flushes(2);
        assert_eq!(stats.flushes, 4);
        assert_eq!(stats.solo_flushes, 3);
        assert_eq!(stats.batched_flushes, 1);
        assert_eq!(stats.coalesced_frames, 6);
        assert_eq!(stats.max_frames_per_flush, 3);
        assert_eq!(stats.frames_per_flush(), 1.5);
        let text = stats.to_string();
        assert!(text.contains("flushes=4"), "{text}");
        assert!(text.contains("batched=1"), "{text}");
    }

    #[test]
    fn absorb_sums_counters_and_maxes_maxima() {
        let mut a = NetStats {
            frames_delivered: 2,
            max_ticks_in_phase: 5,
            ..NetStats::default()
        };
        a.note_flush(2);
        let mut b = NetStats {
            frames_delivered: 3,
            max_ticks_in_phase: 9,
            failed_links: vec![FailedLink {
                phase: 1,
                from: ProcessId(0),
                to: ProcessId(1),
                attempts: 5,
            }],
            ..NetStats::default()
        };
        b.note_flush(7);
        a.absorb(&b);
        assert_eq!(a.frames_delivered, 5);
        assert_eq!(a.max_ticks_in_phase, 9);
        assert_eq!(a.flushes, 2);
        assert_eq!(a.coalesced_frames, 9);
        assert_eq!(a.max_frames_per_flush, 7);
        assert_eq!(a.failed_links.len(), 1);
    }

    #[test]
    fn admission_vocabulary_displays_and_tickets() {
        let enqueued = AdmissionVerdict::Enqueued {
            ticket: Ticket(3),
            depth: 2,
        };
        assert_eq!(enqueued.ticket(), Some(Ticket(3)));
        assert!(enqueued.to_string().contains("#3"));
        let shed = AdmissionVerdict::EnqueuedAfterShed {
            ticket: Ticket(9),
            victim: Ticket(4),
        };
        assert!(shed.to_string().contains("shed #4"), "{shed}");
        let refused = AdmissionVerdict::Refused {
            error: AdmissionError::QueueFull { capacity: 8 },
            depth: 8,
        };
        assert_eq!(refused.ticket(), None);
        assert!(refused.to_string().contains("capacity 8"), "{refused}");
        let deadline = AdmissionError::DeadlineExpired {
            waited_ticks: 16,
            capacity: 8,
        };
        assert!(deadline.to_string().contains("16 ticks"), "{deadline}");
        let outcome = ShedOutcome {
            ticket: Ticket(4),
            submitted_tick: 1,
            shed_tick: 7,
            displaced_by: Ticket(9),
        };
        assert!(outcome.to_string().contains("displaced by #9"), "{outcome}");
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<AdmissionError>();
    }

    #[test]
    fn reason_displays_are_specific() {
        let deadline = DegradationReason::DeadlineBlown {
            pending_frames: 4,
            deadline_ticks: 128,
        };
        assert!(deadline.to_string().contains("4 frames"));
        let stalled = DegradationReason::WorkerStalled { waited_ms: 250 };
        assert!(stalled.to_string().contains("250 ms"));
    }
}
