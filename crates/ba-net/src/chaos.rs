//! Chaos profiles: seeded, per-link unreliability for the wire.
//!
//! A [`ChaosProfile`] describes how the network misbehaves — per-link loss,
//! ack loss, duplication, delay, and whether same-tick arrivals may be
//! reordered. Everything is driven by one `u64` seed through
//! [`SimRng`](ba_crypto::rng::SimRng), so a chaos campaign is exactly
//! reproducible from `(profile, seed)` alone: the soak harness can replay a
//! failing run and the shrinker can re-execute candidates deterministically.
//!
//! Profiles compose with the fault-schedule vocabulary from `ba-sim`: a
//! [`ScheduleSpec`](ba_sim::schedule::ScheduleSpec) says which *processors*
//! misbehave, a profile says how the *wire* misbehaves underneath all of
//! them. The named profiles ([`ChaosProfile::from_name`]) are the soak
//! binary's CLI vocabulary.

use ba_crypto::ProcessId;
use std::collections::BTreeMap;

/// Unreliability parameters for one directed link (or the whole wire).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LinkChaos {
    /// Chance (in 1/1000) that one transmission attempt is lost.
    pub drop_per_mille: u16,
    /// Chance (in 1/1000) that the receiver's ack is lost — the frame
    /// arrived, but the sender retransmits and the receiver must dedup.
    pub ack_drop_per_mille: u16,
    /// Chance (in 1/1000) that a successful transmission is duplicated on
    /// the wire (the copy arrives one tick later and is deduplicated).
    pub dup_per_mille: u16,
    /// Maximum extra delivery delay in virtual ticks (uniform in
    /// `0..=max_delay_ticks`).
    pub max_delay_ticks: u8,
}

impl LinkChaos {
    /// A perfectly reliable link: first attempt always arrives, ack always
    /// returns, no duplication, no delay.
    pub const RELIABLE: LinkChaos = LinkChaos {
        drop_per_mille: 0,
        ack_drop_per_mille: 0,
        dup_per_mille: 0,
        max_delay_ticks: 0,
    };

    /// A link that loses every attempt — retransmission cannot save it, so
    /// the sender exhausts its budget and the link is reported failed.
    pub fn dead() -> LinkChaos {
        LinkChaos {
            drop_per_mille: 1000,
            ..LinkChaos::RELIABLE
        }
    }

    /// Whether this link never misbehaves (no RNG draws are consumed).
    pub fn is_reliable(&self) -> bool {
        *self == LinkChaos::RELIABLE
    }
}

/// A seeded description of how the whole wire misbehaves.
#[derive(Clone, Debug)]
pub struct ChaosProfile {
    /// Seed driving every probabilistic decision the wire makes.
    pub seed: u64,
    /// Default behaviour of every link.
    pub base: LinkChaos,
    /// Whether frame copies arriving in the same virtual tick may be
    /// delivered in shuffled order.
    pub reorder: bool,
    overrides: BTreeMap<(ProcessId, ProcessId), LinkChaos>,
}

impl ChaosProfile {
    /// The names accepted by [`ChaosProfile::from_name`], in the order the
    /// soak CLI lists them.
    pub const NAMES: &'static [&'static str] = &["reliable", "jitter", "lossy", "stress"];

    /// A perfectly reliable wire — the profile the equivalence harness uses
    /// to prove the runtime matches the lock-step engine byte-for-byte.
    pub fn reliable() -> Self {
        ChaosProfile {
            seed: 0,
            base: LinkChaos::RELIABLE,
            reorder: false,
            overrides: BTreeMap::new(),
        }
    }

    /// Delay and reordering but no loss: every frame arrives on the first
    /// attempt, just not when (or in the order) it was sent.
    pub fn jitter(seed: u64) -> Self {
        ChaosProfile {
            seed,
            base: LinkChaos {
                max_delay_ticks: 3,
                ..LinkChaos::RELIABLE
            },
            reorder: true,
            overrides: BTreeMap::new(),
        }
    }

    /// Moderate loss in both directions plus mild delay — recoverable by
    /// the retransmission budget in the overwhelming majority of frames.
    pub fn lossy(seed: u64, drop_per_mille: u16) -> Self {
        ChaosProfile {
            seed,
            base: LinkChaos {
                drop_per_mille,
                ack_drop_per_mille: drop_per_mille / 2,
                dup_per_mille: 0,
                max_delay_ticks: 1,
            },
            reorder: false,
            overrides: BTreeMap::new(),
        }
    }

    /// Everything at once: loss, ack loss, duplication, delay, reordering.
    pub fn stress(seed: u64) -> Self {
        ChaosProfile {
            seed,
            base: LinkChaos {
                drop_per_mille: 250,
                ack_drop_per_mille: 150,
                dup_per_mille: 100,
                max_delay_ticks: 3,
            },
            reorder: true,
            overrides: BTreeMap::new(),
        }
    }

    /// Resolves a named profile (see [`ChaosProfile::NAMES`]).
    pub fn from_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "reliable" => Some(ChaosProfile::reliable()),
            "jitter" => Some(ChaosProfile::jitter(seed)),
            "lossy" => Some(ChaosProfile::lossy(seed, 300)),
            "stress" => Some(ChaosProfile::stress(seed)),
            _ => None,
        }
    }

    /// The same misbehaviour envelope under a different seed — how the
    /// service layer derives each BA instance's private chaos stream from
    /// one fleet profile (see [`svc::instance_seed`](crate::svc::instance_seed)).
    pub fn reseeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the behaviour of the directed link `from → to`.
    pub fn with_link(mut self, from: ProcessId, to: ProcessId, chaos: LinkChaos) -> Self {
        self.overrides.insert((from, to), chaos);
        self
    }

    /// The behaviour of the directed link `from → to`.
    pub fn link(&self, from: ProcessId, to: ProcessId) -> LinkChaos {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.base)
    }

    /// Whether no link ever misbehaves and no reordering happens — the wire
    /// will consume no RNG draws at all.
    pub fn is_reliable(&self) -> bool {
        !self.reorder
            && self.base.is_reliable()
            && self.overrides.values().all(LinkChaos::is_reliable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_resolve() {
        for name in ChaosProfile::NAMES {
            assert!(ChaosProfile::from_name(name, 7).is_some(), "{name}");
        }
        assert!(ChaosProfile::from_name("nope", 7).is_none());
        assert!(ChaosProfile::from_name("reliable", 7)
            .unwrap()
            .is_reliable());
        assert!(!ChaosProfile::from_name("stress", 7).unwrap().is_reliable());
        // Jitter loses nothing but is not "reliable": it reorders.
        let jitter = ChaosProfile::jitter(7);
        assert_eq!(jitter.base.drop_per_mille, 0);
        assert!(!jitter.is_reliable());
    }

    #[test]
    fn link_overrides_take_precedence() {
        let profile =
            ChaosProfile::reliable().with_link(ProcessId(1), ProcessId(3), LinkChaos::dead());
        assert!(profile.link(ProcessId(0), ProcessId(1)).is_reliable());
        assert_eq!(
            profile.link(ProcessId(1), ProcessId(3)).drop_per_mille,
            1000
        );
        // The reverse direction is untouched.
        assert!(profile.link(ProcessId(3), ProcessId(1)).is_reliable());
        assert!(!profile.is_reliable());
    }
}
