//! The message-passing runtime: actor chunks on real worker threads, a
//! coordinator phase synchronizer, and the unreliable wire in between.
//!
//! # Architecture
//!
//! [`NetRuntime::run`] spawns `threads` workers, each owning a contiguous
//! chunk of actors, wired to the coordinator with mpsc channels. Each phase
//! proceeds as:
//!
//! 1. **dispatch** — the coordinator sends every worker its actors' inboxes;
//! 2. **step** — workers step their actors concurrently and send back the
//!    staged envelopes, per-actor suppressed-send counts and their
//!    thread-local [`CryptoStats`] delta;
//! 3. **barrier** — the coordinator collects replies under a wall-clock
//!    watchdog ([`NetConfig::phase_timeout`]); a missing reply (stalled or
//!    panicked worker) aborts with a [`WorkerStalled`] verdict;
//! 4. **wire** — staged frames (in sender-id order, after scheduled link
//!    drops) are played over the [`wire`](crate::wire): chaos-rolled loss,
//!    delay, duplication, acks, bounded retransmission with exponential
//!    backoff;
//! 5. **budget** — permanently failed links make their *senders* suspected
//!    (an omission-faulty sender explains every lost frame). While the
//!    union of scheduled-faulty and suspected processors stays within the
//!    budget `t` the run degrades gracefully — suspects are reported
//!    `correct = false` so the agreement checker holds them to nothing.
//!    The moment the union exceeds `t` the model is broken and the run
//!    aborts with a [`FaultBudgetExceeded`] verdict: no decisions are
//!    produced, because none could be trusted.
//!
//! # Equivalence with the lock-step engine
//!
//! Under [`ChaosProfile::reliable`] every frame arrives on its first
//! attempt in staging order, so inbox contents, metrics and decisions are
//! byte-identical to [`ba_sim::Simulation`] at any worker-thread count —
//! the `harness` module proves this for every checkable target. The same
//! [`Metrics`] recording primitives are used, workers return thread-local
//! crypto deltas exactly like the engine's scoped workers, and a registry
//! passed via [`NetRuntime::with_registry`] runs its verifier cache in the
//! same deferred phase-snapshot mode.
//!
//! [`WorkerStalled`]: crate::verdict::DegradationReason::WorkerStalled
//! [`FaultBudgetExceeded`]: crate::verdict::DegradationReason::FaultBudgetExceeded
//! [`ChaosProfile::reliable`]: crate::chaos::ChaosProfile::reliable

use crate::chaos::ChaosProfile;
use crate::verdict::{DegradationReason, DegradationVerdict, NetStats};
use crate::wire::{self, WirePolicy};
use ba_crypto::keys::KeyRegistry;
use ba_crypto::rng::SimRng;
use ba_crypto::stats::CryptoStats;
use ba_crypto::{ProcessId, Value};
use ba_sim::schedule::LinkDrop;
use ba_sim::transport::{Fate, ScheduledDrops, Transport};
use ba_sim::{Actor, Envelope, Metrics, Outbox, Payload};
use std::collections::BTreeSet;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Tuning knobs for the runtime. Construct with
/// [`NetConfig::new`]/[`default`](NetConfig::default) and the `with_*`
/// builders (the same convention as `SvcConfig`, `DsOptions`,
/// `Alg3Options` and `ExtOptions`).
///
/// Defaults: `threads = 1`, `fault_budget = 0`, `max_retries = 4`,
/// `deadline_ticks = 128`, `phase_timeout = 5s`.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Worker threads stepping actors (clamped to at least 1 and at most
    /// the actor count).
    pub threads: usize,
    /// The fault budget `t`: the run aborts when scheduled-faulty plus
    /// suspected processors exceed this.
    pub fault_budget: usize,
    /// Retransmissions allowed per frame after the first attempt.
    pub max_retries: u32,
    /// Virtual ticks one phase may use before it is declared blown.
    pub deadline_ticks: u64,
    /// Wall-clock watchdog for each phase barrier: how long the
    /// coordinator waits for a worker before declaring it stalled.
    pub phase_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            threads: 1,
            fault_budget: 0,
            max_retries: 4,
            deadline_ticks: 128,
            phase_timeout: Duration::from_secs(5),
        }
    }
}

impl NetConfig {
    /// The default configuration; chain `with_*` builders to customize.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the fault budget `t`.
    pub fn with_fault_budget(mut self, fault_budget: usize) -> Self {
        self.fault_budget = fault_budget;
        self
    }

    /// Sets the per-frame retransmission budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the virtual-tick deadline per phase.
    pub fn with_deadline_ticks(mut self, deadline_ticks: u64) -> Self {
        self.deadline_ticks = deadline_ticks;
        self
    }

    /// Sets the wall-clock watchdog per phase barrier.
    pub fn with_phase_timeout(mut self, phase_timeout: Duration) -> Self {
        self.phase_timeout = phase_timeout;
        self
    }
}

/// What a completed (possibly degraded-but-sound) run produced.
#[derive(Clone, Debug)]
pub struct NetOutcome {
    /// Each processor's decision, indexed by processor id.
    pub decisions: Vec<Option<Value>>,
    /// Which processors the run stands behind as correct: the actors'
    /// own flags, minus any sender suspected via failed links.
    pub correct: Vec<bool>,
    /// Logical traffic accounting — byte-identical to the lock-step
    /// engine's under a reliable profile.
    pub metrics: Metrics,
    /// Physical wire statistics (attempts, retransmissions, dedup, acks).
    pub stats: NetStats,
    /// Senders suspected faulty from permanently failed links, in id
    /// order. Non-empty means the run degraded but stayed within budget.
    pub suspected: Vec<ProcessId>,
}

/// One worker's barrier contribution: per-actor staged envelopes plus
/// per-actor omitted-send counts.
type StagedBatch<P> = (Vec<Vec<Envelope<P>>>, Vec<u64>);

enum ToWorker<P> {
    Step {
        phase: usize,
        inboxes: Vec<Vec<Envelope<P>>>,
    },
    Finalize {
        inboxes: Vec<Vec<Envelope<P>>>,
    },
}

enum FromWorker<P> {
    Stepped {
        worker: usize,
        staged: Vec<Vec<Envelope<P>>>,
        omitted: Vec<u64>,
        crypto: CryptoStats,
    },
    Finalized {
        worker: usize,
        decisions: Vec<Option<Value>>,
        crypto: CryptoStats,
    },
}

struct Worker<P> {
    tx: Sender<ToWorker<P>>,
    base: usize,
    len: usize,
    // The message pump runs detached on the shared WorkerPool (leased via
    // spawn_detached), never joined: a stalled worker must not be able to
    // hang the coordinator's abort path. It exits — releasing its pool
    // thread — when `tx` is dropped and its channel closes.
}

fn worker_loop<P: Payload + 'static>(
    worker: usize,
    base: usize,
    mut actors: Vec<Box<dyn Actor<P>>>,
    rx: Receiver<ToWorker<P>>,
    tx: Sender<FromWorker<P>>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Step { phase, inboxes } => {
                let before = CryptoStats::snapshot();
                let mut staged = Vec::with_capacity(actors.len());
                let mut omitted = Vec::with_capacity(actors.len());
                for (j, actor) in actors.iter_mut().enumerate() {
                    let mut out = Outbox::new(ProcessId((base + j) as u32));
                    actor.step(phase, &inboxes[j], &mut out);
                    omitted.push(out.omitted_count());
                    staged.push(out.into_staged());
                }
                let crypto = CryptoStats::snapshot().since(&before);
                if tx
                    .send(FromWorker::Stepped {
                        worker,
                        staged,
                        omitted,
                        crypto,
                    })
                    .is_err()
                {
                    return;
                }
            }
            ToWorker::Finalize { inboxes } => {
                let before = CryptoStats::snapshot();
                for (j, actor) in actors.iter_mut().enumerate() {
                    actor.finalize(&inboxes[j]);
                }
                let crypto = CryptoStats::snapshot().since(&before);
                let decisions = actors.iter().map(|a| a.decision()).collect();
                if tx
                    .send(FromWorker::Finalized {
                        worker,
                        decisions,
                        crypto,
                    })
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// A message-passing run over `n` actors. Build with [`NetRuntime::new`],
/// configure, then [`run`](NetRuntime::run) — the runtime is consumed
/// because the actors move onto the worker threads.
pub struct NetRuntime<P: Payload> {
    actors: Vec<Box<dyn Actor<P>>>,
    config: NetConfig,
    chaos: ChaosProfile,
    link_drops: BTreeSet<LinkDrop>,
    registry: Option<KeyRegistry>,
}

impl<P: Payload> std::fmt::Debug for NetRuntime<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetRuntime")
            .field("n", &self.actors.len())
            .field("config", &self.config)
            .field("chaos", &self.chaos)
            .finish()
    }
}

impl<P: Payload + 'static> NetRuntime<P> {
    /// Creates a runtime over `actors`; actor `i` is processor `i`.
    pub fn new(actors: Vec<Box<dyn Actor<P>>>, config: NetConfig) -> Self {
        NetRuntime {
            actors,
            config,
            chaos: ChaosProfile::reliable(),
            link_drops: BTreeSet::new(),
            registry: None,
        }
    }

    /// Injects the chaos profile the wire rolls against (default:
    /// [`ChaosProfile::reliable`]).
    pub fn with_chaos(mut self, chaos: ChaosProfile) -> Self {
        self.chaos = chaos;
        self
    }

    /// Declares scheduled link drops, with exactly the semantics of
    /// [`Simulation::with_link_drops`](ba_sim::Simulation::with_link_drops):
    /// a matching frame is suppressed before it ever reaches the wire and
    /// accounted under `omitted_messages`.
    pub fn with_link_drops(mut self, drops: impl IntoIterator<Item = LinkDrop>) -> Self {
        self.link_drops.extend(drops);
        self
    }

    /// Declares the [`KeyRegistry`] whose verifier cache this run's actors
    /// share; mirrors [`Simulation::with_registry`]'s deferred
    /// phase-snapshot mode so crypto counters stay schedule-independent.
    ///
    /// [`Simulation::with_registry`]: ba_sim::Simulation::with_registry
    pub fn with_registry(mut self, registry: &KeyRegistry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.actors.len()
    }

    /// Runs exactly `phases` phases.
    ///
    /// # Errors
    /// A [`DegradationVerdict`] (boxed — the verdict carries full wire
    /// statistics) when the observable fault set exceeds the budget, a
    /// phase's delivery deadline is blown, or a worker misses the phase
    /// barrier. The runtime never panics on wire failures and never
    /// returns decisions from a run whose fault assumptions broke.
    pub fn run(self, phases: usize) -> Result<NetOutcome, Box<DegradationVerdict>> {
        let NetRuntime {
            actors,
            config,
            chaos,
            link_drops,
            registry,
        } = self;
        let n = actors.len();
        let correct: Vec<bool> = actors.iter().map(|a| a.is_correct()).collect();
        let scheduled_faulty: BTreeSet<ProcessId> = correct
            .iter()
            .enumerate()
            .filter(|(_, ok)| !**ok)
            .map(|(i, _)| ProcessId(i as u32))
            .collect();

        // Spawn workers over contiguous actor chunks, mirroring the
        // engine's chunking so "threads = k" means the same partition.
        let worker_count = config.threads.clamp(1, n.max(1));
        let chunk = n.div_ceil(worker_count.max(1)).max(1);
        let (reply_tx, reply_rx) = channel::<FromWorker<P>>();
        let mut workers: Vec<Worker<P>> = Vec::with_capacity(worker_count);
        let mut remaining = actors;
        let mut base = 0usize;
        let mut widx = 0usize;
        while !remaining.is_empty() {
            let take = chunk.min(remaining.len());
            let rest = remaining.split_off(take);
            let owned = std::mem::replace(&mut remaining, rest);
            let (tx, rx) = channel::<ToWorker<P>>();
            let reply = reply_tx.clone();
            let (w, b) = (widx, base);
            ba_sim::WorkerPool::shared()
                .spawn_detached(move || worker_loop(w, b, owned, rx, reply));
            workers.push(Worker {
                tx,
                base,
                len: take,
            });
            base += take;
            widx += 1;
        }
        drop(reply_tx);

        if let Some(registry) = &registry {
            registry.cache().set_deferred(true);
        }

        let mut scheduled = ScheduledDrops::new(link_drops.iter().copied());
        let mut rng = SimRng::new(chaos.seed);
        let policy = WirePolicy {
            max_retries: config.max_retries,
            deadline_ticks: config.deadline_ticks,
        };
        let mut metrics = Metrics::default();
        let mut stats = NetStats::default();
        let mut suspected: BTreeSet<ProcessId> = BTreeSet::new();
        let mut inboxes: Vec<Vec<Envelope<P>>> = vec![Vec::new(); n];

        let finish_registry = |registry: &Option<KeyRegistry>| {
            if let Some(registry) = registry {
                registry.cache().set_deferred(false);
            }
        };
        let verdict = |phase: usize,
                       reason: DegradationReason,
                       suspected: &BTreeSet<ProcessId>,
                       stats: &NetStats,
                       stalled: Vec<usize>| {
            Box::new(DegradationVerdict {
                phase,
                reason,
                suspected: suspected.iter().copied().collect(),
                failed_links: stats.failed_links.clone(),
                stalled_workers: stalled,
                stats: stats.clone(),
            })
        };

        for phase in 1..=phases {
            // Dispatch: hand each worker its actors' inboxes.
            for worker in &workers {
                let slice: Vec<Vec<Envelope<P>>> = inboxes[worker.base..worker.base + worker.len]
                    .iter_mut()
                    .map(std::mem::take)
                    .collect();
                // A send failure means the worker is already dead; the
                // barrier below will convert that into a verdict.
                let _ = worker.tx.send(ToWorker::Step {
                    phase,
                    inboxes: slice,
                });
            }

            // Barrier with wall-clock watchdog.
            let mut staged_by_worker: Vec<Option<StagedBatch<P>>> =
                (0..workers.len()).map(|_| None).collect();
            let mut phase_crypto = CryptoStats::default();
            let mut replied = 0usize;
            while replied < workers.len() {
                match reply_rx.recv_timeout(config.phase_timeout) {
                    Ok(FromWorker::Stepped {
                        worker,
                        staged,
                        omitted,
                        crypto,
                    }) => {
                        phase_crypto = phase_crypto.add(&crypto);
                        staged_by_worker[worker] = Some((staged, omitted));
                        replied += 1;
                    }
                    Ok(FromWorker::Finalized { .. }) => {
                        // Impossible by protocol order; ignore defensively.
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                        let stalled: Vec<usize> = staged_by_worker
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.is_none())
                            .map(|(w, _)| w)
                            .collect();
                        finish_registry(&registry);
                        return Err(verdict(
                            phase,
                            DegradationReason::WorkerStalled {
                                waited_ms: config.phase_timeout.as_millis() as u64,
                            },
                            &suspected,
                            &stats,
                            stalled,
                        ));
                    }
                }
            }

            // Accounting in actor-id order, exactly like the engine's
            // routing barrier: suppressed sends, nonexistent receivers,
            // scheduled link drops.
            let mut frames: Vec<Envelope<P>> = Vec::new();
            for slot in staged_by_worker {
                let (staged, omitted) = slot.expect("all workers replied");
                for (staged_one, omitted_one) in staged.into_iter().zip(omitted) {
                    metrics.record_omitted(phase, omitted_one);
                    for env in staged_one {
                        if env.to.index() >= n {
                            continue;
                        }
                        if scheduled.admit(phase, env.from, env.to) == Fate::Omit {
                            metrics.record_omitted(phase, 1);
                            continue;
                        }
                        frames.push(env);
                    }
                }
            }

            // The unreliable wire. A standalone runtime flushes each frame
            // as its own wire send; only the service layer coalesces.
            stats.note_solo_flushes(frames.len() as u64);
            let report = wire::deliver(phase, frames, &chaos, &mut rng, policy, &mut stats);
            if report.pending > 0 {
                finish_registry(&registry);
                return Err(verdict(
                    phase,
                    DegradationReason::DeadlineBlown {
                        pending_frames: report.pending,
                        deadline_ticks: config.deadline_ticks,
                    },
                    &suspected,
                    &stats,
                    vec![],
                ));
            }
            for link in &report.failed {
                suspected.insert(link.from);
                // A frame that never made it is suppressed traffic, same
                // bucket as a scheduled drop: sent but never on the wire.
                metrics.record_omitted(phase, 1);
            }
            stats.failed_links.extend(report.failed.iter().copied());

            // Fault budget: scheduled faults plus suspected senders.
            let observed = scheduled_faulty.union(&suspected).count();
            if observed > config.fault_budget {
                finish_registry(&registry);
                return Err(verdict(
                    phase,
                    DegradationReason::FaultBudgetExceeded {
                        observed,
                        budget: config.fault_budget,
                    },
                    &suspected,
                    &stats,
                    vec![],
                ));
            }

            // Deliveries, in arrival order.
            for env in report.delivered {
                metrics.record_send(
                    phase,
                    correct[env.from.index()],
                    env.payload.signature_count(),
                    env.payload.weight_bytes(),
                    env.payload.payload_bytes(),
                    env.payload.kind(),
                );
                inboxes[env.to.index()].push(env);
            }

            metrics.record_phase_crypto(phase, phase_crypto);
            if let Some(registry) = &registry {
                registry.cache().flush_pending();
            }
        }

        // Finalize on the workers; same watchdog.
        for worker in &workers {
            let slice: Vec<Vec<Envelope<P>>> = inboxes[worker.base..worker.base + worker.len]
                .iter_mut()
                .map(std::mem::take)
                .collect();
            let _ = worker.tx.send(ToWorker::Finalize { inboxes: slice });
        }
        let mut decisions: Vec<Option<Value>> = vec![None; n];
        let mut finalize_crypto = CryptoStats::default();
        let mut replied = 0usize;
        let mut done: Vec<bool> = vec![false; workers.len()];
        while replied < workers.len() {
            match reply_rx.recv_timeout(config.phase_timeout) {
                Ok(FromWorker::Finalized {
                    worker,
                    decisions: worker_decisions,
                    crypto,
                }) => {
                    finalize_crypto = finalize_crypto.add(&crypto);
                    let base = workers[worker].base;
                    for (j, d) in worker_decisions.into_iter().enumerate() {
                        decisions[base + j] = d;
                    }
                    done[worker] = true;
                    replied += 1;
                }
                Ok(FromWorker::Stepped { .. }) => {}
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    let stalled: Vec<usize> = done
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| !**d)
                        .map(|(w, _)| w)
                        .collect();
                    finish_registry(&registry);
                    return Err(verdict(
                        phases + 1,
                        DegradationReason::WorkerStalled {
                            waited_ms: config.phase_timeout.as_millis() as u64,
                        },
                        &suspected,
                        &stats,
                        stalled,
                    ));
                }
            }
        }
        metrics.absorb_crypto(finalize_crypto);
        finish_registry(&registry);
        metrics.phases = phases;

        let mut correct_out = correct;
        for p in &suspected {
            correct_out[p.index()] = false;
        }
        Ok(NetOutcome {
            decisions,
            correct: correct_out,
            metrics,
            stats,
            suspected: suspected.into_iter().collect(),
        })
    }
}
