//! The virtual-tick wire: deterministic unreliable delivery with
//! retransmission, exponential backoff, acks and receiver-side dedup.
//!
//! Within one phase the coordinator hands the wire every staged frame (in
//! sender-id order) and the wire plays out delivery over *virtual ticks*:
//!
//! * tick `k`: every frame whose retransmission timer expires is put on the
//!   wire; the chaos profile rolls loss, delay and duplication per attempt;
//! * tick `k + 1 + delay`: surviving copies arrive; the receiver dedups by
//!   frame id, delivers the first copy, and acks every copy (the ack
//!   itself may be lost);
//! * a sender stops retransmitting when the ack arrives or when its retry
//!   budget (`1 + max_retries` transmissions, backoff 3, 6, 12, … ticks)
//!   is exhausted — an undelivered frame at that point is a permanently
//!   **failed link**;
//! * if frames are still unsettled when `deadline_ticks` expires, the
//!   phase's synchrony assumption is broken and the caller turns the
//!   pending count into a [`DeadlineBlown`] verdict.
//!
//! The wire runs entirely on the coordinator thread with one seeded
//! [`SimRng`], so a chaos campaign is bit-reproducible from the seed — at
//! any worker-thread count. Under a reliable profile no RNG draw is ever
//! consumed and delivery order equals staging order, which is what makes
//! the runtime byte-identical to the lock-step engine.
//!
//! [`DeadlineBlown`]: crate::verdict::DegradationReason::DeadlineBlown

use crate::chaos::ChaosProfile;
use crate::verdict::{FailedLink, NetStats};
use ba_crypto::rng::SimRng;
use ba_sim::{Envelope, Payload};
use std::collections::BTreeMap;

/// Retry policy for one phase of wire delivery.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WirePolicy {
    /// Retransmissions allowed after the first attempt.
    pub max_retries: u32,
    /// Virtual ticks a phase may use before it is declared blown.
    pub deadline_ticks: u64,
}

/// First retransmission timeout in ticks: one tick to arrive, one for the
/// ack, one of slack. Doubles per retry, capped at [`BACKOFF_CAP`].
const INITIAL_BACKOFF: u64 = 3;
const BACKOFF_CAP: u64 = 64;

/// What one phase of wire delivery produced.
pub(crate) struct WireReport<P> {
    /// Frames that reached their receiver, in arrival order.
    pub delivered: Vec<Envelope<P>>,
    /// Links that permanently failed (frame never delivered).
    pub failed: Vec<FailedLink>,
    /// Frames neither delivered nor given up on when the deadline expired;
    /// non-zero means the phase is blown. (Ticks consumed are folded into
    /// [`NetStats::max_ticks_in_phase`].)
    pub pending: usize,
}

struct Slot {
    attempts: u32,
    backoff: u64,
    next_send: u64,
    delivered: bool,
    done: bool,
}

fn roll(rng: &mut SimRng, per_mille: u16) -> bool {
    per_mille > 0 && rng.range_u64(0, 1000) < u64::from(per_mille)
}

/// Deterministic Fisher–Yates shuffle for same-tick arrival reordering.
fn shuffle(items: &mut [usize], rng: &mut SimRng) {
    for i in (1..items.len()).rev() {
        let j = rng.range_usize(0, i + 1);
        items.swap(i, j);
    }
}

/// Plays out one phase's frames over the unreliable wire.
pub(crate) fn deliver<P: Payload>(
    phase: usize,
    frames: Vec<Envelope<P>>,
    profile: &ChaosProfile,
    rng: &mut SimRng,
    policy: WirePolicy,
    stats: &mut NetStats,
) -> WireReport<P> {
    let mut frames: Vec<Option<Envelope<P>>> = frames.into_iter().map(Some).collect();
    let mut slots: Vec<Slot> = frames
        .iter()
        .map(|_| Slot {
            attempts: 0,
            backoff: INITIAL_BACKOFF,
            next_send: 0,
            delivered: false,
            done: false,
        })
        .collect();

    // Event queues keyed by arrival tick; BTreeMap iteration order plus
    // in-tick push order keeps everything deterministic.
    let mut arrivals: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut acks: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut delivery_order: Vec<usize> = Vec::new();
    let mut failed: Vec<FailedLink> = Vec::new();
    let mut unresolved = slots.len();
    let mut tick = 0u64;

    while unresolved > 0 && tick <= policy.deadline_ticks {
        // Acks first: an ack arriving this tick cancels a retransmission
        // timer that would fire this same tick.
        if let Some(list) = acks.remove(&tick) {
            for idx in list {
                if !slots[idx].done {
                    slots[idx].done = true;
                    unresolved -= 1;
                }
            }
        }

        // Frame copies arriving this tick.
        if let Some(mut list) = arrivals.remove(&tick) {
            if profile.reorder && list.len() > 1 {
                shuffle(&mut list, rng);
            }
            for idx in list {
                let env = frames[idx].as_ref().expect("frame taken before settle");
                let link = profile.link(env.from, env.to);
                if slots[idx].delivered {
                    stats.duplicates_suppressed += 1;
                } else {
                    slots[idx].delivered = true;
                    stats.frames_delivered += 1;
                    delivery_order.push(idx);
                }
                // The receiver acks every copy it sees; a lost ack keeps
                // the sender's retransmission timer armed.
                if roll(rng, link.ack_drop_per_mille) {
                    stats.acks_lost += 1;
                } else {
                    acks.entry(tick + 1).or_default().push(idx);
                }
            }
        }

        // Transmissions whose timer expires this tick, in frame order.
        for idx in 0..slots.len() {
            let slot = &mut slots[idx];
            if slot.done || slot.next_send != tick {
                continue;
            }
            if slot.attempts > policy.max_retries {
                // Retry budget exhausted. A frame that did arrive (ack
                // losses only) is settled; one that never arrived is a
                // permanently failed link.
                slot.done = true;
                unresolved -= 1;
                if !slot.delivered {
                    let env = frames[idx].as_ref().expect("frame taken before settle");
                    stats.frames_failed += 1;
                    failed.push(FailedLink {
                        phase,
                        from: env.from,
                        to: env.to,
                        attempts: slot.attempts,
                    });
                }
                continue;
            }
            slot.attempts += 1;
            stats.physical_transmissions += 1;
            if slot.attempts > 1 {
                stats.retransmissions += 1;
            }
            let env = frames[idx].as_ref().expect("frame taken before settle");
            let link = profile.link(env.from, env.to);
            if !roll(rng, link.drop_per_mille) {
                let delay = if link.max_delay_ticks > 0 {
                    rng.range_u64(0, u64::from(link.max_delay_ticks) + 1)
                } else {
                    0
                };
                arrivals.entry(tick + 1 + delay).or_default().push(idx);
                if roll(rng, link.dup_per_mille) {
                    arrivals.entry(tick + 2 + delay).or_default().push(idx);
                }
            }
            let slot = &mut slots[idx];
            slot.next_send = tick + slot.backoff;
            slot.backoff = (slot.backoff * 2).min(BACKOFF_CAP);
        }

        tick += 1;
    }

    stats.max_ticks_in_phase = stats.max_ticks_in_phase.max(tick);
    // Anything unsettled and undelivered at the deadline blew the phase;
    // unsettled-but-delivered frames were only waiting for an ack.
    let pending = slots.iter().filter(|s| !s.done && !s.delivered).count();
    let delivered = delivery_order
        .into_iter()
        .map(|idx| frames[idx].take().expect("each frame delivered once"))
        .collect();
    WireReport {
        delivered,
        failed,
        pending,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::LinkChaos;
    use ba_crypto::{ProcessId, Value};

    const POLICY: WirePolicy = WirePolicy {
        max_retries: 4,
        deadline_ticks: 128,
    };

    fn frames(n: u32) -> Vec<Envelope<Value>> {
        (0..n)
            .map(|i| Envelope {
                from: ProcessId(i),
                to: ProcessId((i + 1) % n),
                payload: Value(i as u64),
            })
            .collect()
    }

    #[test]
    fn reliable_wire_delivers_in_staging_order_without_retransmission() {
        let profile = ChaosProfile::reliable();
        let mut rng = SimRng::new(1);
        let mut stats = NetStats::default();
        let report = deliver(1, frames(5), &profile, &mut rng, POLICY, &mut stats);
        assert_eq!(report.delivered.len(), 5);
        assert_eq!(report.failed.len(), 0);
        assert_eq!(report.pending, 0);
        let order: Vec<u64> = report.delivered.iter().map(|e| e.payload.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4], "delivery order = staging order");
        assert_eq!(stats.physical_transmissions, 5);
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.duplicates_suppressed, 0);
        // Send at tick 0, arrive at 1, ack at 2 -> 3 ticks.
        assert_eq!(stats.max_ticks_in_phase, 3);
        // A reliable wire consumes no randomness at all.
        assert_eq!(rng.next_u64(), SimRng::new(1).next_u64());
    }

    #[test]
    fn dead_link_fails_after_retry_budget() {
        let profile =
            ChaosProfile::reliable().with_link(ProcessId(0), ProcessId(1), LinkChaos::dead());
        let mut rng = SimRng::new(2);
        let mut stats = NetStats::default();
        let report = deliver(4, frames(3), &profile, &mut rng, POLICY, &mut stats);
        assert_eq!(report.delivered.len(), 2, "other links deliver");
        assert_eq!(report.failed.len(), 1);
        let link = report.failed[0];
        assert_eq!(
            (link.phase, link.from, link.to),
            (4, ProcessId(0), ProcessId(1))
        );
        assert_eq!(
            link.attempts,
            POLICY.max_retries + 1,
            "1 original + retries"
        );
        assert_eq!(stats.frames_failed, 1);
        assert_eq!(report.pending, 0, "a failed link is settled, not pending");
        assert!(stats.max_ticks_in_phase <= POLICY.deadline_ticks);
    }

    #[test]
    fn lost_acks_cause_retransmission_and_dedup_but_single_delivery() {
        // Frames always arrive, acks never do: every retry is spurious and
        // every extra copy must be suppressed by the receiver.
        let mut profile = ChaosProfile::reliable();
        profile.base = LinkChaos {
            ack_drop_per_mille: 1000,
            ..LinkChaos::RELIABLE
        };
        let mut rng = SimRng::new(3);
        let mut stats = NetStats::default();
        let report = deliver(1, frames(2), &profile, &mut rng, POLICY, &mut stats);
        assert_eq!(report.delivered.len(), 2, "delivered exactly once each");
        assert_eq!(report.failed.len(), 0, "delivered frames never fail");
        assert_eq!(report.pending, 0);
        assert_eq!(stats.retransmissions, 2 * u64::from(POLICY.max_retries));
        assert_eq!(stats.duplicates_suppressed, stats.retransmissions);
        assert_eq!(stats.acks_lost, stats.physical_transmissions);
    }

    #[test]
    fn chaos_is_seed_deterministic() {
        let profile = ChaosProfile::stress(9);
        let run = |seed: u64| {
            let mut rng = SimRng::new(seed);
            let mut stats = NetStats::default();
            let report = deliver(2, frames(8), &profile, &mut rng, POLICY, &mut stats);
            let order: Vec<u64> = report.delivered.iter().map(|e| e.payload.0).collect();
            (order, report.failed, stats)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds behave differently");
    }

    #[test]
    fn blown_deadline_reports_pending_frames() {
        let profile =
            ChaosProfile::reliable().with_link(ProcessId(0), ProcessId(1), LinkChaos::dead());
        // A deadline too short for the backoff schedule to exhaust retries:
        // the dead link's frame is still unsettled when time runs out.
        let policy = WirePolicy {
            max_retries: 10,
            deadline_ticks: 8,
        };
        let mut rng = SimRng::new(4);
        let mut stats = NetStats::default();
        let report = deliver(1, frames(2), &profile, &mut rng, policy, &mut stats);
        assert_eq!(report.pending, 1);
        assert_eq!(report.delivered.len(), 1);
        assert!(report.failed.is_empty(), "pending, not yet failed");
    }

    #[test]
    fn jitter_reorders_but_loses_nothing() {
        let profile = ChaosProfile::jitter(11);
        let mut rng = SimRng::new(profile.seed);
        let mut stats = NetStats::default();
        let report = deliver(1, frames(16), &profile, &mut rng, POLICY, &mut stats);
        assert_eq!(report.delivered.len(), 16);
        assert_eq!(report.failed.len(), 0);
        assert_eq!(report.pending, 0);
        let order: Vec<u64> = report.delivered.iter().map(|e| e.payload.0).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "every frame arrives");
        assert_ne!(order, sorted, "but not in staging order");
    }
}
