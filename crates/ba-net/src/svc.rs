//! `ba-svc`: the multi-instance BA multiplexer — many concurrent agreement
//! instances over one wire, one worker pool and one verifier cache.
//!
//! The paper bounds the information exchange of a *single* agreement; a
//! serving system runs one instance per client request and amortizes the
//! fixed machinery across all of them. This module is that layer:
//!
//! * **Instance tagging** — every frame the service coalesces is a
//!   [`TaggedFrame`]: the wire envelope plus the id of the BA instance it
//!   belongs to, so one physical flush can carry many instances' traffic
//!   and still demultiplex exactly.
//! * **Pipelined phases** — the service advances *every* in-flight
//!   instance by one phase per service tick. Instances are admitted
//!   open-loop ([`SvcConfig::admit_per_tick`]) while earlier ones are
//!   mid-protocol, so instance `k + 1`'s phase 1 overlaps instance `k`'s
//!   phase 2: the coordination cost of a tick (one pool fan-out, one cache
//!   flush) is paid once for the whole fleet instead of once per instance.
//! * **Shared-wire batching** — all instances' frames for one directed
//!   link are assembled into a single flush per tick
//!   ([`NetStats::flushes`] counts them; the standalone runtime's
//!   one-send-per-frame behaviour shows up as `solo_flushes`).
//! * **Shared verifier cache** — built with
//!   [`BaService::with_shared_cache`], every instance's registry shares
//!   one sharded [`VerifierCache`], so a signer prefix verified by any
//!   instance is a cache hit fleet-wide. Sound only because all instances
//!   of one service share a cluster identity (same registry seed); see
//!   [`KeyRegistry::with_shared_cache`](ba_crypto::keys::KeyRegistry::with_shared_cache).
//! * **Flush-boundary batch verification** — when an instance's
//!   [`InstanceSpec::registry`] is present, the service verifies each
//!   distinct signature chain a flush delivers *once* and stamps its
//!   shared buffer ([`Chain::mark_verified`](ba_crypto::Chain::mark_verified)),
//!   so all `n` recipients' own `verify` calls are O(1) stamp hits. The
//!   standalone runtime verifies per recipient; amortizing verification
//!   across the batched flush is where the service's throughput advantage
//!   comes from on top of cache sharing.
//! * **Per-instance verdicts** — chaos fates, retransmission state, fault
//!   budgets and degradation are all tracked per instance: one instance
//!   blowing its budget yields *its own* [`DegradationVerdict`] while the
//!   rest of the fleet keeps deciding.
//!
//! # Determinism
//!
//! Each instance draws its chaos fates from a private [`SimRng`] seeded
//! [`instance_seed`]`(profile.seed, id)`, and its phases play the wire in
//! exactly the standalone [`NetRuntime`](crate::runtime::NetRuntime)
//! order. A multiplexed instance is therefore byte-identical — decisions,
//! suspicion, wire statistics — to a standalone run under
//! [`ChaosProfile::reseeded`]`(instance_seed(seed, id))`, at any worker
//! count: batching changes *when* frames share a physical flush, never
//! which frames exist or what fate each one rolls. The shared cache runs
//! in deferred mode and flushes once per service tick, so the multiplexed
//! run's own counters are also worker-count independent.

use crate::chaos::ChaosProfile;
use crate::verdict::{DegradationReason, DegradationVerdict, NetStats};
use crate::wire::{self, WirePolicy};
use ba_crypto::keys::KeyRegistry;
use ba_crypto::rng::{splitmix64, SimRng};
use ba_crypto::stats::CryptoStats;
use ba_crypto::{ProcessId, Value, VerifierCache};
use ba_sim::schedule::LinkDrop;
use ba_sim::transport::{Fate, ScheduledDrops, Transport};
use ba_sim::{Actor, Envelope, Metrics, Outbox, Payload, WorkerPool};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Derives BA instance `instance`'s private chaos seed from the fleet
/// profile's base seed. A standalone run under
/// [`ChaosProfile::reseeded`]`(instance_seed(base, instance))` sees the
/// exact fate stream the multiplexed instance sees.
pub fn instance_seed(base: u64, instance: u64) -> u64 {
    let mut state = base ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// Tuning knobs for the service layer.
#[derive(Clone, Debug)]
pub struct SvcConfig {
    /// Worker threads (pool participants) stepping instances each tick;
    /// instances are the unit of parallelism.
    pub threads: usize,
    /// Maximum instances in flight at once; arrivals beyond this queue.
    pub max_inflight: usize,
    /// Instances admitted from the queue per service tick (the open-loop
    /// arrival rate).
    pub admit_per_tick: usize,
    /// Retransmissions allowed per frame after the first attempt.
    pub max_retries: u32,
    /// Virtual ticks one instance-phase may use before it is declared
    /// blown.
    pub deadline_ticks: u64,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            threads: 1,
            max_inflight: 64,
            admit_per_tick: 8,
            max_retries: 4,
            deadline_ticks: 128,
        }
    }
}

/// One BA instance handed to the service: its actors (faults already
/// applied), phase count, fault budget and scheduled link drops — the same
/// ingredients a standalone [`NetRuntime`](crate::runtime::NetRuntime)
/// takes.
pub struct InstanceSpec<P> {
    /// One actor per processor; actor `i` is processor `i`.
    pub actors: Vec<Box<dyn Actor<P>>>,
    /// Phases the algorithm needs before finalization.
    pub phases: usize,
    /// The fault budget `t` for this instance.
    pub fault_budget: usize,
    /// Scheduled link drops, with standalone-runtime semantics.
    pub link_drops: Vec<LinkDrop>,
    /// The instance's key registry. When present, the service batch-verifies
    /// each distinct signature chain once per flush and stamps its shared
    /// buffer, so every recipient's own `verify` is an O(1) stamp hit
    /// instead of a full hash-and-check pass (the engine's
    /// `with_batched_verification`, applied at the service's flush
    /// boundary).
    pub registry: Option<KeyRegistry>,
}

impl<P> std::fmt::Debug for InstanceSpec<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceSpec")
            .field("n", &self.actors.len())
            .field("phases", &self.phases)
            .field("fault_budget", &self.fault_budget)
            .finish()
    }
}

/// A wire frame annotated with the BA instance it belongs to — the unit a
/// coalesced per-link flush carries.
#[derive(Debug)]
pub struct TaggedFrame<P> {
    /// The owning instance's id (admission order).
    pub instance: u64,
    /// The instance's staging-order index of this frame, so demultiplexing
    /// restores the exact standalone delivery order.
    pub seq: usize,
    /// The wire envelope itself.
    pub frame: Envelope<P>,
}

/// What one settled instance produced — the per-instance analogue of
/// [`NetOutcome`](crate::runtime::NetOutcome).
#[derive(Clone, Debug)]
pub struct InstanceRun {
    /// Each processor's decision.
    pub decisions: Vec<Option<Value>>,
    /// Correctness flags after suspicion.
    pub correct: Vec<bool>,
    /// Logical traffic accounting for this instance alone.
    pub metrics: Metrics,
    /// This instance's physical wire statistics (its frames only; flush
    /// coalescing is accounted fleet-wide in [`SvcReport::stats`]).
    pub stats: NetStats,
    /// Senders this instance suspects from its failed links, in id order.
    pub suspected: Vec<ProcessId>,
}

/// One instance's journey through the service.
#[derive(Clone, Debug)]
pub struct InstanceOutcome {
    /// The instance tag (admission order, dense from 0).
    pub id: u64,
    /// Service tick at which the instance was admitted.
    pub admitted_tick: u64,
    /// Service tick at which it decided or degraded.
    pub settled_tick: u64,
    /// Wall-clock time from admission to settlement.
    pub latency: Duration,
    /// The decisions, or this instance's own degradation verdict — other
    /// instances are unaffected either way.
    pub result: Result<InstanceRun, Box<DegradationVerdict>>,
}

/// What one service run produced.
#[derive(Debug)]
pub struct SvcReport {
    /// Every instance's outcome, in admission order.
    pub outcomes: Vec<InstanceOutcome>,
    /// Fleet-wide wire statistics: per-instance stats absorbed together,
    /// plus the flush-coalescing counters only the service can observe.
    pub stats: NetStats,
    /// Service ticks executed.
    pub ticks: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// The most instances ever in flight at once.
    pub peak_inflight: usize,
}

impl SvcReport {
    /// Instances that decided.
    pub fn decided(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Instances that degraded with their own verdict.
    pub fn degraded(&self) -> usize {
        self.outcomes.len() - self.decided()
    }

    /// Decision latencies of the instances that decided, in admission
    /// order.
    pub fn decision_latencies(&self) -> Vec<Duration> {
        self.outcomes
            .iter()
            .filter(|o| o.result.is_ok())
            .map(|o| o.latency)
            .collect()
    }
}

/// The multiplexer. Configure, then [`run`](Self::run) a batch of
/// instances; the service owns the tick loop, the shared pool fan-out and
/// the per-link flush assembly.
#[derive(Clone, Debug)]
pub struct BaService {
    config: SvcConfig,
    chaos: ChaosProfile,
    shared_cache: Option<Arc<VerifierCache>>,
}

impl BaService {
    /// Creates a service with a reliable wire.
    pub fn new(config: SvcConfig) -> Self {
        BaService {
            config,
            chaos: ChaosProfile::reliable(),
            shared_cache: None,
        }
    }

    /// Installs the fleet chaos profile. Each instance rolls its own fates
    /// from [`instance_seed`]`(profile.seed, id)`.
    pub fn with_chaos(mut self, chaos: ChaosProfile) -> Self {
        self.chaos = chaos;
        self
    }

    /// Declares the verifier cache the instances' registries share. The
    /// service runs it in deferred mode, flushing once per tick, so
    /// fleet-wide hit/miss counters are worker-count independent.
    pub fn with_shared_cache(mut self, cache: Arc<VerifierCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Runs every instance in `specs` to settlement (decision or
    /// per-instance degradation) and reports the fleet outcome. Instances
    /// are tagged 0, 1, … in `specs` order, admitted open-loop.
    pub fn run<P: Payload + 'static>(&self, specs: Vec<InstanceSpec<P>>) -> SvcReport {
        let started = Instant::now();
        let policy = WirePolicy {
            max_retries: self.config.max_retries,
            deadline_ticks: self.config.deadline_ticks,
        };
        if let Some(cache) = &self.shared_cache {
            cache.set_deferred(true);
        }

        let mut queue: VecDeque<Instance<P>> = specs
            .into_iter()
            .enumerate()
            .map(|(id, spec)| Instance::new(id as u64, spec, self.chaos.seed))
            .collect();
        let total = queue.len();
        let mut active: Vec<Instance<P>> = Vec::new();
        let mut settled: Vec<InstanceOutcome> = Vec::with_capacity(total);
        let mut stats = NetStats::default();
        let mut tick = 0u64;
        let mut peak_inflight = 0usize;
        let max_inflight = self.config.max_inflight.max(1);
        let admit_per_tick = self.config.admit_per_tick.max(1);

        while !queue.is_empty() || !active.is_empty() {
            // Admission: open-loop arrivals, bounded by the in-flight cap.
            let mut admitted = 0usize;
            while admitted < admit_per_tick && active.len() < max_inflight {
                match queue.pop_front() {
                    Some(mut inst) => {
                        inst.admitted_tick = tick;
                        inst.admitted_at = Instant::now();
                        active.push(inst);
                        admitted += 1;
                    }
                    None => break,
                }
            }
            peak_inflight = peak_inflight.max(active.len());

            // Step: every in-flight instance advances one phase (or
            // finalizes) concurrently on the shared pool. One pool task
            // steps all actors of one instance, so the per-instance
            // thread-local crypto delta is measured where the work runs.
            let cells: Vec<Mutex<&mut Instance<P>>> = active.iter_mut().map(Mutex::new).collect();
            WorkerPool::shared().run_chunks_capped(cells.len(), self.config.threads, |i| {
                cells[i].lock().expect("instance cell poisoned").step_one();
            });
            drop(cells);

            // Coalesce: collect every instance's post-schedule frames,
            // assemble one flush per directed link carrying all of them.
            let mut batches: BTreeMap<(ProcessId, ProcessId), Vec<TaggedFrame<P>>> =
                BTreeMap::new();
            for inst in active.iter_mut() {
                for (seq, frame) in inst.wire_frames.drain(..).enumerate() {
                    batches
                        .entry((frame.from, frame.to))
                        .or_default()
                        .push(TaggedFrame {
                            instance: inst.id,
                            seq,
                            frame,
                        });
                }
            }
            let mut per_instance: BTreeMap<u64, Vec<(usize, Envelope<P>)>> = BTreeMap::new();
            for (_, batch) in batches {
                stats.note_flush(batch.len() as u64);
                for tagged in batch {
                    per_instance
                        .entry(tagged.instance)
                        .or_default()
                        .push((tagged.seq, tagged.frame));
                }
            }

            // Deliver and settle, in admission order. Each instance plays
            // the wire with its own rng and policy state — fates are
            // per-instance even though the physical flushes were shared.
            let mut still_active: Vec<Instance<P>> = Vec::with_capacity(active.len());
            for mut inst in active {
                if inst.finalized() {
                    let outcome = inst.into_decided(tick);
                    if let Ok(run) = &outcome.result {
                        stats.absorb(&run.stats);
                    }
                    settled.push(outcome);
                    continue;
                }
                let mut frames: Vec<(usize, Envelope<P>)> =
                    per_instance.remove(&inst.id).unwrap_or_default();
                frames.sort_unstable_by_key(|(seq, _)| *seq);
                let frames: Vec<Envelope<P>> = frames.into_iter().map(|(_, env)| env).collect();
                match inst.deliver_phase(frames, &self.chaos, policy) {
                    Ok(()) => still_active.push(inst),
                    Err(verdict) => {
                        let outcome = inst.into_degraded(tick, verdict);
                        if let Err(verdict) = &outcome.result {
                            stats.absorb(&verdict.stats);
                        }
                        settled.push(outcome);
                    }
                }
            }
            active = still_active;

            // The tick barrier publishes this tick's verifications
            // fleet-wide, exactly like the engine's phase barrier.
            if let Some(cache) = &self.shared_cache {
                cache.flush_pending();
            }
            tick += 1;
        }

        if let Some(cache) = &self.shared_cache {
            cache.set_deferred(false);
        }
        settled.sort_by_key(|o| o.id);
        SvcReport {
            outcomes: settled,
            stats,
            ticks: tick,
            elapsed: started.elapsed(),
            peak_inflight,
        }
    }
}

/// One in-flight instance: the standalone runtime's entire per-run state,
/// privately owned so fates and verdicts never leak across instances.
struct Instance<P> {
    id: u64,
    actors: Vec<Box<dyn Actor<P>>>,
    n: usize,
    phases: usize,
    fault_budget: usize,
    /// Next phase to step, 1-based; `phases + 1` means finalize.
    phase: usize,
    inboxes: Vec<Vec<Envelope<P>>>,
    scheduled: ScheduledDrops,
    scheduled_faulty: BTreeSet<ProcessId>,
    correct: Vec<bool>,
    suspected: BTreeSet<ProcessId>,
    rng: SimRng,
    metrics: Metrics,
    stats: NetStats,
    admitted_tick: u64,
    admitted_at: Instant,
    /// Post-schedule frames staged by the last step, awaiting the wire.
    wire_frames: Vec<Envelope<P>>,
    /// Thread-local crypto delta of the last step.
    step_crypto: CryptoStats,
    /// Crypto spent by the last flush's batch-verification pass, attributed
    /// to the phase that consumes the stamped frames (the engine's
    /// carry-forward rule).
    carry_crypto: CryptoStats,
    /// This instance's registry, enabling flush-boundary batch
    /// verification.
    registry: Option<KeyRegistry>,
    /// Set once finalize ran.
    decisions: Option<Vec<Option<Value>>>,
}

impl<P: Payload> Instance<P> {
    fn new(id: u64, spec: InstanceSpec<P>, base_seed: u64) -> Self {
        let n = spec.actors.len();
        let correct: Vec<bool> = spec.actors.iter().map(|a| a.is_correct()).collect();
        let scheduled_faulty: BTreeSet<ProcessId> = correct
            .iter()
            .enumerate()
            .filter(|(_, ok)| !**ok)
            .map(|(i, _)| ProcessId(i as u32))
            .collect();
        Instance {
            id,
            n,
            phases: spec.phases,
            fault_budget: spec.fault_budget,
            phase: 1,
            inboxes: vec![Vec::new(); n],
            scheduled: ScheduledDrops::new(spec.link_drops.iter().copied()),
            scheduled_faulty,
            correct,
            suspected: BTreeSet::new(),
            rng: SimRng::new(instance_seed(base_seed, id)),
            metrics: Metrics::default(),
            stats: NetStats::default(),
            admitted_tick: 0,
            admitted_at: Instant::now(),
            wire_frames: Vec::new(),
            step_crypto: CryptoStats::default(),
            carry_crypto: CryptoStats::default(),
            registry: spec.registry,
            actors: spec.actors,
            decisions: None,
        }
    }

    fn finalized(&self) -> bool {
        self.decisions.is_some()
    }

    /// Advances the instance by one phase — or finalizes it — on whatever
    /// pool thread picked it up. Mirrors one worker-loop round of the
    /// standalone runtime, including the accounting the coordinator does
    /// there: suppressed sends, nonexistent receivers, scheduled drops.
    fn step_one(&mut self) {
        let before = CryptoStats::snapshot();
        let inboxes: Vec<Vec<Envelope<P>>> = self.inboxes.iter_mut().map(std::mem::take).collect();
        if self.phase <= self.phases {
            let phase = self.phase;
            for (j, actor) in self.actors.iter_mut().enumerate() {
                let mut out = Outbox::new(ProcessId(j as u32));
                actor.step(phase, &inboxes[j], &mut out);
                self.metrics.record_omitted(phase, out.omitted_count());
                for env in out.into_staged() {
                    if env.to.index() >= self.n {
                        continue;
                    }
                    if self.scheduled.admit(phase, env.from, env.to) == Fate::Omit {
                        self.metrics.record_omitted(phase, 1);
                        continue;
                    }
                    self.wire_frames.push(env);
                }
            }
        } else {
            for (j, actor) in self.actors.iter_mut().enumerate() {
                actor.finalize(&inboxes[j]);
            }
            self.decisions = Some(self.actors.iter().map(|a| a.decision()).collect());
        }
        self.step_crypto = CryptoStats::snapshot().since(&before);
    }

    /// Plays this instance's staged frames over the wire and applies the
    /// standalone runtime's post-wire pipeline: deadline, suspicion, fault
    /// budget, deliveries, per-phase crypto.
    fn deliver_phase(
        &mut self,
        frames: Vec<Envelope<P>>,
        chaos: &ChaosProfile,
        policy: WirePolicy,
    ) -> Result<(), Box<DegradationVerdict>> {
        let phase = self.phase;
        let report = wire::deliver(phase, frames, chaos, &mut self.rng, policy, &mut self.stats);
        if report.pending > 0 {
            return Err(self.verdict(DegradationReason::DeadlineBlown {
                pending_frames: report.pending,
                deadline_ticks: policy.deadline_ticks,
            }));
        }
        for link in &report.failed {
            self.suspected.insert(link.from);
            self.metrics.record_omitted(phase, 1);
        }
        self.stats
            .failed_links
            .extend(report.failed.iter().copied());

        let observed = self.scheduled_faulty.union(&self.suspected).count();
        if observed > self.fault_budget {
            return Err(self.verdict(DegradationReason::FaultBudgetExceeded {
                observed,
                budget: self.fault_budget,
            }));
        }

        // Flush-boundary batched verification: verify each distinct
        // signature chain this flush delivered once, stamp its shared
        // buffer, and every recipient's own `verify` next step becomes an
        // O(1) stamp hit. Runs on the coordinator thread in delivery order
        // — deterministic at any worker count. This is the service-side
        // analogue of the engine's batched barrier; the standalone runtime
        // verifies per recipient.
        let batch_crypto = if let Some(registry) = &self.registry {
            let before = CryptoStats::snapshot();
            let verifier = registry.verifier();
            let mut seen: HashSet<(usize, u32, u64)> = HashSet::new();
            for env in &report.delivered {
                let Some(chain) = env.payload.batch_chain() else {
                    continue;
                };
                if chain.is_empty() {
                    continue;
                }
                let key = (chain.storage_id(), chain.domain(), chain.value().0);
                if seen.insert(key) && chain.verify(&verifier).is_ok() {
                    chain.mark_verified(&verifier);
                }
            }
            CryptoStats::snapshot().since(&before)
        } else {
            CryptoStats::default()
        };

        for env in report.delivered {
            self.metrics.record_send(
                phase,
                self.correct[env.from.index()],
                env.payload.signature_count(),
                env.payload.weight_bytes(),
                env.payload.payload_bytes(),
                env.payload.kind(),
            );
            self.inboxes[env.to.index()].push(env);
        }
        let phase_crypto =
            std::mem::take(&mut self.step_crypto).add(&std::mem::take(&mut self.carry_crypto));
        self.metrics.record_phase_crypto(phase, phase_crypto);
        // The batch pass verified frames the *next* phase consumes; carry
        // its cost there, the engine's attribution rule.
        self.carry_crypto = batch_crypto;
        self.phase += 1;
        Ok(())
    }

    fn verdict(&self, reason: DegradationReason) -> Box<DegradationVerdict> {
        Box::new(DegradationVerdict {
            phase: self.phase,
            reason,
            suspected: self.suspected.iter().copied().collect(),
            failed_links: self.stats.failed_links.clone(),
            stalled_workers: vec![],
            stats: self.stats.clone(),
        })
    }

    fn into_decided(mut self, tick: u64) -> InstanceOutcome {
        let mut metrics = std::mem::take(&mut self.metrics);
        let tail =
            std::mem::take(&mut self.step_crypto).add(&std::mem::take(&mut self.carry_crypto));
        metrics.absorb_crypto(tail);
        metrics.phases = self.phases;
        let mut correct = std::mem::take(&mut self.correct);
        for p in &self.suspected {
            correct[p.index()] = false;
        }
        InstanceOutcome {
            id: self.id,
            admitted_tick: self.admitted_tick,
            settled_tick: tick,
            latency: self.admitted_at.elapsed(),
            result: Ok(InstanceRun {
                decisions: self.decisions.take().expect("finalized"),
                correct,
                metrics,
                stats: std::mem::take(&mut self.stats),
                suspected: self.suspected.iter().copied().collect(),
            }),
        }
    }

    fn into_degraded(self, tick: u64, verdict: Box<DegradationVerdict>) -> InstanceOutcome {
        InstanceOutcome {
            id: self.id,
            admitted_tick: self.admitted_tick,
            settled_tick: tick,
            latency: self.admitted_at.elapsed(),
            result: Err(verdict),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_seeds_are_distinct_and_stable() {
        let a = instance_seed(7, 0);
        let b = instance_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(a, instance_seed(7, 0));
        assert_ne!(a, instance_seed(8, 0), "base seed matters");
    }

    #[test]
    fn empty_service_run_settles_immediately() {
        let service = BaService::new(SvcConfig::default());
        let report = service.run::<Value>(vec![]);
        assert_eq!(report.outcomes.len(), 0);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.decided(), 0);
        assert_eq!(report.degraded(), 0);
    }
}
