//! `ba-svc`: the multi-instance BA service — many concurrent agreement
//! instances over one wire, one worker pool and one verifier cache, behind
//! an open-loop session API with explicit admission control.
//!
//! The paper bounds the information exchange of a *single* agreement; a
//! serving system runs one instance per client request, amortizes the
//! fixed machinery across all of them, and — crucially — keeps accepting
//! requests while earlier ones are still deciding. This module is that
//! layer:
//!
//! * **Session API** — [`BaService::session`] opens a long-lived
//!   [`SvcSession`]: [`submit`](SvcSession::submit) offers one
//!   [`InstanceSpec`] and returns a [`Ticket`] (or a structured
//!   [`AdmissionError`]), [`tick`](SvcSession::tick) advances every
//!   in-flight instance one phase, [`try_outcome`](SvcSession::try_outcome)
//!   polls a ticket for settlement, and [`drain`](SvcSession::drain) runs
//!   the session to quiescence and produces the [`SvcReport`]. The old
//!   batch entry point [`BaService::run`] survives as a deprecated thin
//!   wrapper over a session and is proven byte-identical for fixed fleets.
//! * **Admission control & backpressure** — a bounded queue
//!   ([`SvcConfig::queue_capacity`]) guards [`SvcConfig::max_inflight`].
//!   When the queue is full the session applies its [`AdmissionPolicy`] —
//!   reject, shed-oldest, or block-with-deadline — and every submission,
//!   accepted or refused, is recorded as a structured [`AdmissionVerdict`]
//!   in the session's admission log. Backpressure never panics and never
//!   drops silently: a shed instance leaves a [`ShedOutcome`], and the
//!   report's accounting is exact (`submitted = decided + degraded +
//!   shed`).
//! * **Open-loop arrivals** — [`PoissonArrivals`] is a seeded Poisson
//!   process over service ticks, so benchmarks and tests can offer
//!   sustained load (λ instances per tick) instead of a fixed batch, and
//!   measure steady-state agreements/sec plus submission-to-decision
//!   latency (queue wait included) rather than batch-relative figures.
//! * **Instance tagging** — every frame the service coalesces is a
//!   [`TaggedFrame`]: the wire envelope plus the id of the BA instance it
//!   belongs to, so one physical flush can carry many instances' traffic
//!   and still demultiplex exactly.
//! * **Pipelined phases** — each [`tick`](SvcSession::tick) admits up to
//!   [`SvcConfig::admit_per_tick`] queued instances and advances *every*
//!   in-flight instance by one phase, so instance `k + 1`'s phase 1
//!   overlaps instance `k`'s phase 2: the coordination cost of a tick (one
//!   pool fan-out, one cache flush) is paid once for the whole fleet.
//! * **Shared-wire batching** — all instances' frames for one directed
//!   link are assembled into a single flush per tick
//!   ([`NetStats::flushes`] counts them; the standalone runtime's
//!   one-send-per-frame behaviour shows up as `solo_flushes`).
//! * **Shared verifier cache** — built with
//!   [`BaService::with_shared_cache`], every instance's registry shares
//!   one sharded [`VerifierCache`], so a signer prefix verified by any
//!   instance is a cache hit fleet-wide. Sound only because all instances
//!   of one service share a cluster identity (same registry seed); see
//!   [`KeyRegistry::with_shared_cache`](ba_crypto::keys::KeyRegistry::with_shared_cache).
//! * **Flush-boundary batch verification** — when an instance's
//!   [`InstanceSpec::registry`] is present, the service verifies each
//!   distinct signature chain a flush delivers *once* and stamps its
//!   shared buffer ([`Chain::mark_verified`](ba_crypto::Chain::mark_verified)),
//!   so all `n` recipients' own `verify` calls are O(1) stamp hits.
//! * **Per-instance verdicts** — chaos fates, retransmission state, fault
//!   budgets and degradation are all tracked per instance: one instance
//!   blowing its budget yields *its own* [`DegradationVerdict`] while the
//!   rest of the fleet keeps deciding.
//!
//! # Determinism
//!
//! Each instance draws its chaos fates from a private [`SimRng`] seeded
//! [`instance_seed`]`(profile.seed, ticket)`, and its phases play the wire
//! in exactly the standalone [`NetRuntime`](crate::runtime::NetRuntime)
//! order. A multiplexed instance is therefore byte-identical — decisions,
//! suspicion, wire statistics — to a standalone run under
//! [`ChaosProfile::reseeded`]`(instance_seed(seed, ticket))`, at any
//! worker count: batching changes *when* frames share a physical flush,
//! never which frames exist or what fate each one rolls. The shared cache
//! runs in deferred mode and flushes once per service tick, so the
//! session's own counters are also worker-count independent. Admission is
//! deterministic too: the same submission schedule (which `submit`/`tick`
//! calls in which order) yields the same tickets, the same admission
//! verdicts and the same shed set, at any worker count — only wall-clock
//! durations vary.
//!
//! # Example
//!
//! ```
//! use ba_net::{AdmissionPolicy, BaService, InstanceSpec, SvcConfig};
//! use ba_crypto::{ProcessId, Value};
//! use ba_sim::actor::{Actor, Envelope, Outbox};
//!
//! #[derive(Debug)]
//! struct Echo(Value);
//! impl Actor<Value> for Echo {
//!     fn step(&mut self, _phase: usize, _inbox: &[Envelope<Value>], out: &mut Outbox<Value>) {
//!         out.send(ProcessId(0), self.0);
//!     }
//!     fn decision(&self) -> Option<Value> { Some(self.0) }
//! }
//!
//! let service = BaService::new(SvcConfig::new().with_admission(AdmissionPolicy::Reject));
//! let mut session = service.session::<Value>();
//! let ticket = session
//!     .submit(InstanceSpec {
//!         actors: vec![Box::new(Echo(Value::ONE))],
//!         phases: 1,
//!         fault_budget: 0,
//!         link_drops: vec![],
//!         registry: None,
//!     })
//!     .expect("queue has room");
//! let report = session.drain();
//! assert_eq!(report.outcomes[0].ticket(), ticket);
//! assert!(report.accounting_balanced());
//! ```

use crate::chaos::ChaosProfile;
use crate::verdict::{
    AdmissionError, AdmissionVerdict, DegradationReason, DegradationVerdict, NetStats, ShedOutcome,
    Ticket,
};
use crate::wire::{self, WirePolicy};
use ba_crypto::keys::KeyRegistry;
use ba_crypto::rng::{splitmix64, SimRng};
use ba_crypto::stats::CryptoStats;
use ba_crypto::{ProcessId, Value, VerifierCache};
use ba_sim::schedule::LinkDrop;
use ba_sim::transport::{Fate, ScheduledDrops, Transport};
use ba_sim::{Actor, Envelope, Metrics, Outbox, Payload, QueueStats, WorkerPool};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Derives one BA instance's private chaos seed from the fleet profile's
/// base seed. `instance` is the instance's ticket number — dense from 0 in
/// *submission* order, so a ticket that is later shed still consumed its
/// seed slot and the surviving instances' streams are unaffected by the
/// shed.
///
/// For one fixed `base` the map `instance → seed` is injective: the
/// multiplier is odd (so `instance * M` never collides modulo 2⁶⁴), the
/// XOR with `base` preserves distinctness, and [`splitmix64`] is a
/// bijection on `u64`. Two instances under one base seed therefore *never*
/// share a chaos rng stream — the property the per-instance determinism
/// contract rests on (see the collision test in this module). Distinct
/// `base` values may collide with each other's instance seeds; only the
/// within-fleet guarantee is load-bearing.
///
/// A standalone run under
/// [`ChaosProfile::reseeded`]`(instance_seed(base, instance))` sees the
/// exact fate stream the multiplexed instance sees.
pub fn instance_seed(base: u64, instance: u64) -> u64 {
    let mut state = base ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

/// A seeded Poisson arrival process over service ticks: call
/// [`next`](PoissonArrivals::next) once per tick to learn how many
/// instances arrive during that tick. Drives open-loop load generation —
/// arrivals are independent of service state, which is exactly what makes
/// saturation (and the backpressure policy's reaction to it) observable.
///
/// The generator is deterministic for a given `(seed, rate)`: the same
/// schedule replays byte-identically, so open-loop runs can be asserted
/// deterministic across worker counts. Sampling uses Knuth's product
/// method, which is exact and costs O(λ) uniforms per tick — fine for the
/// per-tick rates a service tick loop meters (λ ≲ 64).
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    rng: SimRng,
    rate: f64,
    /// `e^{-λ}`, precomputed.
    threshold: f64,
}

impl PoissonArrivals {
    /// Creates a process with mean `rate` arrivals per tick.
    ///
    /// # Panics
    /// Panics when `rate` is negative or not finite.
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "arrival rate must be finite and non-negative, got {rate}"
        );
        PoissonArrivals {
            rng: SimRng::new(seed),
            rate,
            threshold: (-rate).exp(),
        }
    }

    /// The configured mean arrivals per tick.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Samples the number of arrivals in the next tick.
    pub fn next_arrivals(&mut self) -> usize {
        if self.rate == 0.0 {
            return 0;
        }
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            // Uniform in [0, 1) with the full 53 bits of double precision.
            p *= (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            if p <= self.threshold {
                return k;
            }
            k += 1;
        }
    }
}

impl Iterator for PoissonArrivals {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        Some(self.next_arrivals())
    }
}

/// What a session does when a submission finds the admission queue full.
/// Whatever the policy, the outcome is a structured value — an
/// [`AdmissionVerdict`] in the log, an [`AdmissionError`] to the caller, a
/// [`ShedOutcome`] for an evicted ticket — never a panic, never a silent
/// drop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum AdmissionPolicy {
    /// Refuse the new submission with [`AdmissionError::QueueFull`]. The
    /// default: the caller owns the retry policy.
    #[default]
    Reject,
    /// Evict the *oldest queued* (never in-flight) ticket to make room,
    /// recording its [`ShedOutcome`], and accept the new submission —
    /// freshest-work-wins load shedding.
    ShedOldest,
    /// Tick the session from inside `submit` until a queue slot frees or
    /// `deadline_ticks` service ticks elapse, then refuse with
    /// [`AdmissionError::DeadlineExpired`]. Because every tick advances
    /// all in-flight instances one phase (and instances settle within
    /// their phase count), waiting always makes progress — the deadline
    /// bounds the wait, it does not paper over a deadlock.
    BlockWithDeadline {
        /// Maximum service ticks one submission may wait.
        deadline_ticks: u64,
    },
}

/// Tuning knobs for the service layer. Construct with
/// [`SvcConfig::new`]/[`default`](SvcConfig::default) and the `with_*`
/// builders — the struct is `#[non_exhaustive]` because its surface keeps
/// growing with the service layer.
///
/// Defaults: `threads = 1`, `max_inflight = 64`, `admit_per_tick = 8`,
/// `max_retries = 4`, `deadline_ticks = 128`, `queue_capacity = 64`,
/// `admission = AdmissionPolicy::Reject`.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct SvcConfig {
    /// Worker threads (pool participants) stepping instances each tick;
    /// instances are the unit of parallelism.
    pub threads: usize,
    /// Maximum instances in flight at once; arrivals beyond this queue.
    pub max_inflight: usize,
    /// Instances admitted from the queue per service tick.
    pub admit_per_tick: usize,
    /// Retransmissions allowed per frame after the first attempt.
    pub max_retries: u32,
    /// Virtual ticks one instance-phase may use before it is declared
    /// blown.
    pub deadline_ticks: u64,
    /// Bound on the admission queue (submitted but not yet in flight);
    /// submissions past it trigger the [`AdmissionPolicy`].
    pub queue_capacity: usize,
    /// What to do when the admission queue is full.
    pub admission: AdmissionPolicy,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            threads: 1,
            max_inflight: 64,
            admit_per_tick: 8,
            max_retries: 4,
            deadline_ticks: 128,
            queue_capacity: 64,
            admission: AdmissionPolicy::Reject,
        }
    }
}

impl SvcConfig {
    /// The default configuration; chain `with_*` builders to customize.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count for per-tick instance stepping.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the in-flight instance cap.
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// Sets how many queued instances each tick may admit.
    pub fn with_admit_per_tick(mut self, admit_per_tick: usize) -> Self {
        self.admit_per_tick = admit_per_tick;
        self
    }

    /// Sets the per-frame retransmission budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the virtual-tick deadline per instance phase.
    pub fn with_deadline_ticks(mut self, deadline_ticks: u64) -> Self {
        self.deadline_ticks = deadline_ticks;
        self
    }

    /// Sets the admission-queue bound.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the backpressure policy applied when the queue is full.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }
}

/// One BA instance handed to the service: its actors (faults already
/// applied), phase count, fault budget and scheduled link drops — the same
/// ingredients a standalone [`NetRuntime`](crate::runtime::NetRuntime)
/// takes.
pub struct InstanceSpec<P> {
    /// One actor per processor; actor `i` is processor `i`.
    pub actors: Vec<Box<dyn Actor<P>>>,
    /// Phases the algorithm needs before finalization.
    pub phases: usize,
    /// The fault budget `t` for this instance.
    pub fault_budget: usize,
    /// Scheduled link drops, with standalone-runtime semantics.
    pub link_drops: Vec<LinkDrop>,
    /// The instance's key registry. When present, the service batch-verifies
    /// each distinct signature chain once per flush and stamps its shared
    /// buffer, so every recipient's own `verify` is an O(1) stamp hit
    /// instead of a full hash-and-check pass (the engine's
    /// `with_batched_verification`, applied at the service's flush
    /// boundary).
    pub registry: Option<KeyRegistry>,
}

impl<P> std::fmt::Debug for InstanceSpec<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceSpec")
            .field("n", &self.actors.len())
            .field("phases", &self.phases)
            .field("fault_budget", &self.fault_budget)
            .finish()
    }
}

/// A wire frame annotated with the BA instance it belongs to — the unit a
/// coalesced per-link flush carries.
#[derive(Debug)]
pub struct TaggedFrame<P> {
    /// The owning instance's id (submission order).
    pub instance: u64,
    /// The instance's staging-order index of this frame, so demultiplexing
    /// restores the exact standalone delivery order.
    pub seq: usize,
    /// The wire envelope itself.
    pub frame: Envelope<P>,
}

/// What one settled instance produced — the per-instance analogue of
/// [`NetOutcome`](crate::runtime::NetOutcome).
#[derive(Clone, Debug)]
pub struct InstanceRun {
    /// Each processor's decision.
    pub decisions: Vec<Option<Value>>,
    /// Correctness flags after suspicion.
    pub correct: Vec<bool>,
    /// Logical traffic accounting for this instance alone.
    pub metrics: Metrics,
    /// This instance's physical wire statistics (its frames only; flush
    /// coalescing is accounted fleet-wide in [`SvcReport::stats`]).
    pub stats: NetStats,
    /// Senders this instance suspects from its failed links, in id order.
    pub suspected: Vec<ProcessId>,
}

/// One instance's journey through the service: tick-precise and
/// wall-clock-precise timestamps for submission, admission and settlement,
/// plus the result. Wall-clock timestamps are offsets from the session's
/// start, so a streaming consumer can order and subtract them without
/// holding the session.
#[derive(Clone, Debug)]
pub struct InstanceOutcome {
    /// The instance id (submission order, dense from 0).
    pub id: u64,
    /// Service tick at which the instance was submitted (entered the
    /// queue).
    pub submitted_tick: u64,
    /// Service tick at which it was admitted into flight.
    pub admitted_tick: u64,
    /// Service tick at which it decided or degraded.
    pub settled_tick: u64,
    /// Wall-clock submission time, as an offset from session start.
    pub submitted_at: Duration,
    /// Wall-clock admission time, as an offset from session start.
    pub admitted_at: Duration,
    /// Wall-clock settlement time, as an offset from session start.
    pub decided_at: Duration,
    /// The decisions, or this instance's own degradation verdict — other
    /// instances are unaffected either way.
    pub result: Result<InstanceRun, Box<DegradationVerdict>>,
}

impl InstanceOutcome {
    /// The ticket this outcome settles.
    pub fn ticket(&self) -> Ticket {
        Ticket(self.id)
    }

    /// Submission-to-decision latency — the figure an open-loop client
    /// experiences, queue wait included.
    pub fn latency(&self) -> Duration {
        self.decided_at.saturating_sub(self.submitted_at)
    }

    /// Time spent waiting in the admission queue.
    pub fn queue_wait(&self) -> Duration {
        self.admitted_at.saturating_sub(self.submitted_at)
    }

    /// Admission-to-decision service time (the pre-session notion of
    /// latency, which ignored queueing).
    pub fn service_time(&self) -> Duration {
        self.decided_at.saturating_sub(self.admitted_at)
    }
}

/// What one service session produced.
#[derive(Debug)]
pub struct SvcReport {
    /// Every settled instance's outcome, in submission order. Shed tickets
    /// are *not* here — they are in [`shed`](SvcReport::shed).
    pub outcomes: Vec<InstanceOutcome>,
    /// Every ticket evicted by shed-oldest backpressure, in ticket order.
    pub shed: Vec<ShedOutcome>,
    /// One verdict per `submit` call, in call order — the complete
    /// admission audit trail, refusals included.
    pub admission_log: Vec<AdmissionVerdict>,
    /// Queue-side accounting: submissions, admissions, sheds, rejections,
    /// blocking waits and depth statistics.
    pub queue: QueueStats,
    /// Fleet-wide wire statistics: per-instance stats absorbed together,
    /// plus the flush-coalescing counters only the service can observe.
    pub stats: NetStats,
    /// Service ticks executed.
    pub ticks: u64,
    /// Wall-clock duration of the whole session.
    pub elapsed: Duration,
    /// The most instances ever in flight at once.
    pub peak_inflight: usize,
}

impl SvcReport {
    /// Instances that decided.
    pub fn decided(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Instances that degraded with their own verdict.
    pub fn degraded(&self) -> usize {
        self.outcomes.len() - self.decided()
    }

    /// Tickets shed by backpressure.
    pub fn shed_count(&self) -> usize {
        self.shed.len()
    }

    /// Tickets issued over the session's lifetime (shed ones included;
    /// refused submissions are not, because they never got a ticket).
    pub fn submitted(&self) -> usize {
        self.outcomes.len() + self.shed.len()
    }

    /// The exact-accounting invariant every drained session must satisfy:
    /// `submitted = decided + degraded + shed`. Nothing a session accepted
    /// may vanish without a structured record.
    pub fn accounting_balanced(&self) -> bool {
        self.submitted() == self.decided() + self.degraded() + self.shed_count()
            && self.queue.submitted == self.submitted() as u64
            && self.queue.shed == self.shed.len() as u64
    }

    /// Iterates settled outcomes in submission order — the
    /// streaming-friendly accessor: each item carries its own
    /// `submitted_at`/`decided_at` timestamps, so consumers need no
    /// batch-level context.
    pub fn outcomes_iter(&self) -> impl Iterator<Item = &InstanceOutcome> {
        self.outcomes.iter()
    }

    /// Submission-to-decision latencies of the instances that decided, in
    /// submission order. Queue wait is included: this is what an open-loop
    /// client observes, not the batch-relative figure.
    pub fn submission_to_decision_latencies(&self) -> Vec<Duration> {
        self.outcomes
            .iter()
            .filter(|o| o.result.is_ok())
            .map(|o| o.latency())
            .collect()
    }

    /// Documented alias for
    /// [`submission_to_decision_latencies`](Self::submission_to_decision_latencies),
    /// kept for callers of the pre-session API. Note the semantic upgrade:
    /// this used to measure admission-to-decision; it now measures
    /// submission-to-decision (use
    /// [`InstanceOutcome::service_time`] for the old figure).
    pub fn decision_latencies(&self) -> Vec<Duration> {
        self.submission_to_decision_latencies()
    }
}

/// The service front door. Configure once, then open any number of
/// [`session`](Self::session)s; each session owns its tick loop, admission
/// queue and report.
#[derive(Clone, Debug)]
pub struct BaService {
    config: SvcConfig,
    chaos: ChaosProfile,
    shared_cache: Option<Arc<VerifierCache>>,
}

impl BaService {
    /// Creates a service with a reliable wire.
    pub fn new(config: SvcConfig) -> Self {
        BaService {
            config,
            chaos: ChaosProfile::reliable(),
            shared_cache: None,
        }
    }

    /// Installs the fleet chaos profile. Each instance rolls its own fates
    /// from [`instance_seed`]`(profile.seed, ticket)`.
    pub fn with_chaos(mut self, chaos: ChaosProfile) -> Self {
        self.chaos = chaos;
        self
    }

    /// Declares the verifier cache the instances' registries share. Each
    /// session runs it in deferred mode, flushing once per tick, so
    /// fleet-wide hit/miss counters are worker-count independent.
    pub fn with_shared_cache(mut self, cache: Arc<VerifierCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Opens a long-lived session: submit instances over time, tick the
    /// service, poll tickets, drain for the report.
    pub fn session<P: Payload + 'static>(&self) -> SvcSession<P> {
        SvcSession::new(
            self.config.clone(),
            self.chaos.clone(),
            self.shared_cache.clone(),
        )
    }

    /// Runs every instance in `specs` to settlement (decision or
    /// per-instance degradation) and reports the fleet outcome — the
    /// closed-loop batch entry point, kept as a thin wrapper over
    /// [`session`](Self::session): it widens the queue to hold the whole
    /// batch, submits every spec up front and drains. For a fixed fleet
    /// this is byte-identical to driving a session by hand (and to the
    /// pre-session batch runner); `tests/service.rs` and `bench_service`
    /// prove it at 1 and 4 workers.
    #[deprecated(
        since = "0.9.0",
        note = "use `session()` + `submit()` + `drain()`; `run` is a closed-loop wrapper"
    )]
    pub fn run<P: Payload + 'static>(&self, specs: Vec<InstanceSpec<P>>) -> SvcReport {
        let mut wrapper = self.clone();
        wrapper.config.queue_capacity = wrapper.config.queue_capacity.max(specs.len());
        wrapper.config.admission = AdmissionPolicy::Reject;
        let mut session = wrapper.session();
        for spec in specs {
            session
                .submit(spec)
                .expect("run(): queue was widened to the batch size");
        }
        session.drain()
    }
}

/// How far along one ticket is, as reported by [`SvcSession::status`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum TicketStatus {
    /// Waiting in the admission queue at this position (0 = next in).
    Queued {
        /// Position from the head of the queue.
        position: usize,
    },
    /// Admitted and mid-protocol at this 1-based phase.
    InFlight {
        /// Next phase to execute (`phases + 1` = finalize pending).
        phase: usize,
    },
    /// Settled — [`SvcSession::try_outcome`] will return it.
    Settled,
    /// Shed by backpressure — [`SvcSession::try_outcome`] will return the
    /// [`ShedOutcome`].
    Shed,
    /// Never issued by this session.
    Unknown,
}

/// What polling a ticket yields once the session is done with it.
#[derive(Clone, Debug)]
pub enum TicketOutcome {
    /// The instance ran to settlement (decision or degradation).
    Settled(Box<InstanceOutcome>),
    /// The ticket was evicted from the queue by shed-oldest backpressure.
    Shed(ShedOutcome),
}

/// A long-lived, open-loop service session. See the [module
/// docs](self) for the lifecycle and the determinism contract.
pub struct SvcSession<P> {
    config: SvcConfig,
    chaos: ChaosProfile,
    shared_cache: Option<Arc<VerifierCache>>,
    policy: WirePolicy,
    started: Instant,
    queue: VecDeque<Instance<P>>,
    active: Vec<Instance<P>>,
    settled: BTreeMap<u64, InstanceOutcome>,
    shed: BTreeMap<u64, ShedOutcome>,
    admission_log: Vec<AdmissionVerdict>,
    queue_stats: QueueStats,
    stats: NetStats,
    tick: u64,
    next_id: u64,
    peak_inflight: usize,
}

impl<P: Payload + 'static> SvcSession<P> {
    fn new(
        config: SvcConfig,
        chaos: ChaosProfile,
        shared_cache: Option<Arc<VerifierCache>>,
    ) -> Self {
        let policy = WirePolicy {
            max_retries: config.max_retries,
            deadline_ticks: config.deadline_ticks,
        };
        if let Some(cache) = &shared_cache {
            cache.set_deferred(true);
        }
        SvcSession {
            config,
            chaos,
            shared_cache,
            policy,
            started: Instant::now(),
            queue: VecDeque::new(),
            active: Vec::new(),
            settled: BTreeMap::new(),
            shed: BTreeMap::new(),
            admission_log: Vec::new(),
            queue_stats: QueueStats::default(),
            stats: NetStats::default(),
            tick: 0,
            next_id: 0,
            peak_inflight: 0,
        }
    }

    /// Offers one instance to the session. On success the returned
    /// [`Ticket`] identifies the instance for [`try_outcome`] polling; on
    /// refusal the structured [`AdmissionError`] says why. Either way the
    /// decision is appended to the [admission log](Self::admission_log).
    ///
    /// Under [`AdmissionPolicy::BlockWithDeadline`] this call may execute
    /// service ticks (advancing the whole fleet) while it waits for queue
    /// space — bounded by the policy's deadline, so it always returns.
    ///
    /// # Errors
    /// [`AdmissionError::QueueFull`] under [`AdmissionPolicy::Reject`],
    /// [`AdmissionError::DeadlineExpired`] under
    /// [`AdmissionPolicy::BlockWithDeadline`] when no slot freed in time.
    pub fn submit(&mut self, spec: InstanceSpec<P>) -> Result<Ticket, AdmissionError> {
        let capacity = self.config.queue_capacity.max(1);
        let mut waited = 0u64;
        if self.queue.len() >= capacity {
            match self.config.admission {
                AdmissionPolicy::Reject => {
                    let error = AdmissionError::QueueFull { capacity };
                    self.queue_stats.rejected += 1;
                    self.admission_log.push(AdmissionVerdict::Refused {
                        error,
                        depth: self.queue.len(),
                    });
                    return Err(error);
                }
                AdmissionPolicy::ShedOldest => {
                    let victim = self
                        .queue
                        .pop_front()
                        .expect("full queue has a head (capacity >= 1)");
                    let ticket = self.issue(spec);
                    let outcome = ShedOutcome {
                        ticket: Ticket(victim.id),
                        submitted_tick: victim.submitted_tick,
                        shed_tick: self.tick,
                        displaced_by: ticket,
                    };
                    self.shed.insert(victim.id, outcome);
                    self.queue_stats.shed += 1;
                    self.admission_log
                        .push(AdmissionVerdict::EnqueuedAfterShed {
                            ticket,
                            victim: outcome.ticket,
                        });
                    return Ok(ticket);
                }
                AdmissionPolicy::BlockWithDeadline { deadline_ticks } => {
                    self.queue_stats.blocked_submits += 1;
                    while self.queue.len() >= capacity && waited < deadline_ticks {
                        self.tick();
                        waited += 1;
                        self.queue_stats.blocked_ticks += 1;
                    }
                    if self.queue.len() >= capacity {
                        let error = AdmissionError::DeadlineExpired {
                            waited_ticks: waited,
                            capacity,
                        };
                        self.queue_stats.rejected += 1;
                        self.admission_log.push(AdmissionVerdict::Refused {
                            error,
                            depth: self.queue.len(),
                        });
                        return Err(error);
                    }
                }
            }
        }
        let ticket = self.issue(spec);
        let verdict = if waited > 0 {
            AdmissionVerdict::EnqueuedAfterWait {
                ticket,
                waited_ticks: waited,
            }
        } else {
            AdmissionVerdict::Enqueued {
                ticket,
                depth: self.queue.len(),
            }
        };
        self.admission_log.push(verdict);
        Ok(ticket)
    }

    /// Assigns the next ticket, builds the instance and enqueues it.
    fn issue(&mut self, spec: InstanceSpec<P>) -> Ticket {
        let id = self.next_id;
        self.next_id += 1;
        let mut inst = Instance::new(id, spec, self.chaos.seed);
        inst.submitted_tick = self.tick;
        inst.submitted_at = self.started.elapsed();
        self.queue.push_back(inst);
        self.queue_stats.submitted += 1;
        Ticket(id)
    }

    /// Advances the session by one service tick: admit up to
    /// `admit_per_tick` queued instances (bounded by `max_inflight`), step
    /// every in-flight instance one phase on the shared pool, coalesce all
    /// staged frames into one flush per directed link, play each
    /// instance's frames over the wire, settle the finished, and publish
    /// this tick's verifications fleet-wide. A no-op-ish tick on an idle
    /// session still counts (the tick counter is the session's clock).
    pub fn tick(&mut self) {
        // Admission: drain the queue into flight, bounded by the caps.
        let mut admitted = 0usize;
        let max_inflight = self.config.max_inflight.max(1);
        let admit_per_tick = self.config.admit_per_tick.max(1);
        while admitted < admit_per_tick && self.active.len() < max_inflight {
            match self.queue.pop_front() {
                Some(mut inst) => {
                    inst.admitted_tick = self.tick;
                    inst.admitted_at = self.started.elapsed();
                    self.queue_stats.admitted += 1;
                    self.active.push(inst);
                    admitted += 1;
                }
                None => break,
            }
        }
        self.peak_inflight = self.peak_inflight.max(self.active.len());
        self.queue_stats.record_depth(self.queue.len());

        // Step: every in-flight instance advances one phase (or
        // finalizes) concurrently on the shared pool. One pool task
        // steps all actors of one instance, so the per-instance
        // thread-local crypto delta is measured where the work runs.
        let cells: Vec<Mutex<&mut Instance<P>>> = self.active.iter_mut().map(Mutex::new).collect();
        WorkerPool::shared().run_chunks_capped(cells.len(), self.config.threads, |i| {
            cells[i].lock().expect("instance cell poisoned").step_one();
        });
        drop(cells);

        // Coalesce: collect every instance's post-schedule frames,
        // assemble one flush per directed link carrying all of them.
        let mut batches: BTreeMap<(ProcessId, ProcessId), Vec<TaggedFrame<P>>> = BTreeMap::new();
        for inst in self.active.iter_mut() {
            for (seq, frame) in inst.wire_frames.drain(..).enumerate() {
                batches
                    .entry((frame.from, frame.to))
                    .or_default()
                    .push(TaggedFrame {
                        instance: inst.id,
                        seq,
                        frame,
                    });
            }
        }
        let mut per_instance: BTreeMap<u64, Vec<(usize, Envelope<P>)>> = BTreeMap::new();
        for (_, batch) in batches {
            self.stats.note_flush(batch.len() as u64);
            for tagged in batch {
                per_instance
                    .entry(tagged.instance)
                    .or_default()
                    .push((tagged.seq, tagged.frame));
            }
        }

        // Deliver and settle, in submission order. Each instance plays
        // the wire with its own rng and policy state — fates are
        // per-instance even though the physical flushes were shared.
        let now = self.started.elapsed();
        let mut still_active: Vec<Instance<P>> = Vec::with_capacity(self.active.len());
        for mut inst in std::mem::take(&mut self.active) {
            if inst.finalized() {
                let outcome = inst.into_decided(self.tick, now);
                if let Ok(run) = &outcome.result {
                    self.stats.absorb(&run.stats);
                }
                self.settled.insert(outcome.id, outcome);
                continue;
            }
            let mut frames: Vec<(usize, Envelope<P>)> =
                per_instance.remove(&inst.id).unwrap_or_default();
            frames.sort_unstable_by_key(|(seq, _)| *seq);
            let frames: Vec<Envelope<P>> = frames.into_iter().map(|(_, env)| env).collect();
            match inst.deliver_phase(frames, &self.chaos, self.policy) {
                Ok(()) => still_active.push(inst),
                Err(verdict) => {
                    let outcome = inst.into_degraded(self.tick, now, verdict);
                    if let Err(verdict) = &outcome.result {
                        self.stats.absorb(&verdict.stats);
                    }
                    self.settled.insert(outcome.id, outcome);
                }
            }
        }
        self.active = still_active;

        // The tick barrier publishes this tick's verifications
        // fleet-wide, exactly like the engine's phase barrier.
        if let Some(cache) = &self.shared_cache {
            cache.flush_pending();
        }
        self.tick += 1;
    }

    /// Polls one ticket. Returns `None` while the ticket is queued or in
    /// flight (or was never issued); once the session settles or sheds it,
    /// returns the structured outcome. Non-destructive: the outcome also
    /// appears in the drained [`SvcReport`].
    pub fn try_outcome(&self, ticket: Ticket) -> Option<TicketOutcome> {
        if let Some(outcome) = self.settled.get(&ticket.0) {
            return Some(TicketOutcome::Settled(Box::new(outcome.clone())));
        }
        self.shed.get(&ticket.0).copied().map(TicketOutcome::Shed)
    }

    /// Where one ticket currently is in the pipeline.
    pub fn status(&self, ticket: Ticket) -> TicketStatus {
        if self.settled.contains_key(&ticket.0) {
            return TicketStatus::Settled;
        }
        if self.shed.contains_key(&ticket.0) {
            return TicketStatus::Shed;
        }
        if let Some(position) = self.queue.iter().position(|i| i.id == ticket.0) {
            return TicketStatus::Queued { position };
        }
        if let Some(inst) = self.active.iter().find(|i| i.id == ticket.0) {
            return TicketStatus::InFlight { phase: inst.phase };
        }
        TicketStatus::Unknown
    }

    /// Whether nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    /// Instances currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Instances currently in flight.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Service ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The admission audit trail so far, one verdict per `submit` call.
    pub fn admission_log(&self) -> &[AdmissionVerdict] {
        &self.admission_log
    }

    /// Queue-side accounting so far.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue_stats
    }

    /// Runs the session to quiescence (every accepted ticket settled) and
    /// produces the report. Restores the shared verifier cache to
    /// immediate mode. A session abandoned without `drain` leaves the
    /// shared cache in deferred mode — its pending verifications publish
    /// at the next flush, so correctness is unaffected, but drain anyway.
    pub fn drain(mut self) -> SvcReport {
        while !self.is_idle() {
            self.tick();
        }
        if let Some(cache) = &self.shared_cache {
            cache.set_deferred(false);
        }
        SvcReport {
            outcomes: std::mem::take(&mut self.settled).into_values().collect(),
            shed: std::mem::take(&mut self.shed).into_values().collect(),
            admission_log: std::mem::take(&mut self.admission_log),
            queue: self.queue_stats,
            stats: std::mem::take(&mut self.stats),
            ticks: self.tick,
            elapsed: self.started.elapsed(),
            peak_inflight: self.peak_inflight,
        }
    }
}

impl<P> std::fmt::Debug for SvcSession<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvcSession")
            .field("tick", &self.tick)
            .field("queued", &self.queue.len())
            .field("in_flight", &self.active.len())
            .field("settled", &self.settled.len())
            .field("shed", &self.shed.len())
            .finish()
    }
}

/// One in-flight instance: the standalone runtime's entire per-run state,
/// privately owned so fates and verdicts never leak across instances.
struct Instance<P> {
    id: u64,
    actors: Vec<Box<dyn Actor<P>>>,
    n: usize,
    phases: usize,
    fault_budget: usize,
    /// Next phase to step, 1-based; `phases + 1` means finalize.
    phase: usize,
    inboxes: Vec<Vec<Envelope<P>>>,
    scheduled: ScheduledDrops,
    scheduled_faulty: BTreeSet<ProcessId>,
    correct: Vec<bool>,
    suspected: BTreeSet<ProcessId>,
    rng: SimRng,
    metrics: Metrics,
    stats: NetStats,
    submitted_tick: u64,
    submitted_at: Duration,
    admitted_tick: u64,
    admitted_at: Duration,
    /// Post-schedule frames staged by the last step, awaiting the wire.
    wire_frames: Vec<Envelope<P>>,
    /// Thread-local crypto delta of the last step.
    step_crypto: CryptoStats,
    /// Crypto spent by the last flush's batch-verification pass, attributed
    /// to the phase that consumes the stamped frames (the engine's
    /// carry-forward rule).
    carry_crypto: CryptoStats,
    /// This instance's registry, enabling flush-boundary batch
    /// verification.
    registry: Option<KeyRegistry>,
    /// Set once finalize ran.
    decisions: Option<Vec<Option<Value>>>,
}

impl<P: Payload> Instance<P> {
    fn new(id: u64, spec: InstanceSpec<P>, base_seed: u64) -> Self {
        let n = spec.actors.len();
        let correct: Vec<bool> = spec.actors.iter().map(|a| a.is_correct()).collect();
        let scheduled_faulty: BTreeSet<ProcessId> = correct
            .iter()
            .enumerate()
            .filter(|(_, ok)| !**ok)
            .map(|(i, _)| ProcessId(i as u32))
            .collect();
        Instance {
            id,
            n,
            phases: spec.phases,
            fault_budget: spec.fault_budget,
            phase: 1,
            inboxes: vec![Vec::new(); n],
            scheduled: ScheduledDrops::new(spec.link_drops.iter().copied()),
            scheduled_faulty,
            correct,
            suspected: BTreeSet::new(),
            rng: SimRng::new(instance_seed(base_seed, id)),
            metrics: Metrics::default(),
            stats: NetStats::default(),
            submitted_tick: 0,
            submitted_at: Duration::ZERO,
            admitted_tick: 0,
            admitted_at: Duration::ZERO,
            wire_frames: Vec::new(),
            step_crypto: CryptoStats::default(),
            carry_crypto: CryptoStats::default(),
            registry: spec.registry,
            actors: spec.actors,
            decisions: None,
        }
    }

    fn finalized(&self) -> bool {
        self.decisions.is_some()
    }

    /// Advances the instance by one phase — or finalizes it — on whatever
    /// pool thread picked it up. Mirrors one worker-loop round of the
    /// standalone runtime, including the accounting the coordinator does
    /// there: suppressed sends, nonexistent receivers, scheduled drops.
    fn step_one(&mut self) {
        let before = CryptoStats::snapshot();
        let inboxes: Vec<Vec<Envelope<P>>> = self.inboxes.iter_mut().map(std::mem::take).collect();
        if self.phase <= self.phases {
            let phase = self.phase;
            for (j, actor) in self.actors.iter_mut().enumerate() {
                let mut out = Outbox::new(ProcessId(j as u32));
                actor.step(phase, &inboxes[j], &mut out);
                self.metrics.record_omitted(phase, out.omitted_count());
                for env in out.into_staged() {
                    if env.to.index() >= self.n {
                        continue;
                    }
                    if self.scheduled.admit(phase, env.from, env.to) == Fate::Omit {
                        self.metrics.record_omitted(phase, 1);
                        continue;
                    }
                    self.wire_frames.push(env);
                }
            }
        } else {
            for (j, actor) in self.actors.iter_mut().enumerate() {
                actor.finalize(&inboxes[j]);
            }
            self.decisions = Some(self.actors.iter().map(|a| a.decision()).collect());
        }
        self.step_crypto = CryptoStats::snapshot().since(&before);
    }

    /// Plays this instance's staged frames over the wire and applies the
    /// standalone runtime's post-wire pipeline: deadline, suspicion, fault
    /// budget, deliveries, per-phase crypto.
    fn deliver_phase(
        &mut self,
        frames: Vec<Envelope<P>>,
        chaos: &ChaosProfile,
        policy: WirePolicy,
    ) -> Result<(), Box<DegradationVerdict>> {
        let phase = self.phase;
        let report = wire::deliver(phase, frames, chaos, &mut self.rng, policy, &mut self.stats);
        if report.pending > 0 {
            return Err(self.verdict(DegradationReason::DeadlineBlown {
                pending_frames: report.pending,
                deadline_ticks: policy.deadline_ticks,
            }));
        }
        for link in &report.failed {
            self.suspected.insert(link.from);
            self.metrics.record_omitted(phase, 1);
        }
        self.stats
            .failed_links
            .extend(report.failed.iter().copied());

        let observed = self.scheduled_faulty.union(&self.suspected).count();
        if observed > self.fault_budget {
            return Err(self.verdict(DegradationReason::FaultBudgetExceeded {
                observed,
                budget: self.fault_budget,
            }));
        }

        // Flush-boundary batched verification: verify each distinct
        // signature chain this flush delivered once, stamp its shared
        // buffer, and every recipient's own `verify` next step becomes an
        // O(1) stamp hit. Runs on the coordinator thread in delivery order
        // — deterministic at any worker count. This is the service-side
        // analogue of the engine's batched barrier; the standalone runtime
        // verifies per recipient.
        let batch_crypto = if let Some(registry) = &self.registry {
            let before = CryptoStats::snapshot();
            let verifier = registry.verifier();
            let mut seen: HashSet<(usize, u32, u64)> = HashSet::new();
            for env in &report.delivered {
                let Some(chain) = env.payload.batch_chain() else {
                    continue;
                };
                if chain.is_empty() {
                    continue;
                }
                let key = (chain.storage_id(), chain.domain(), chain.value().0);
                if seen.insert(key) && chain.verify(&verifier).is_ok() {
                    chain.mark_verified(&verifier);
                }
            }
            CryptoStats::snapshot().since(&before)
        } else {
            CryptoStats::default()
        };

        for env in report.delivered {
            self.metrics.record_send(
                phase,
                self.correct[env.from.index()],
                env.payload.signature_count(),
                env.payload.weight_bytes(),
                env.payload.payload_bytes(),
                env.payload.kind(),
            );
            self.inboxes[env.to.index()].push(env);
        }
        let phase_crypto =
            std::mem::take(&mut self.step_crypto).add(&std::mem::take(&mut self.carry_crypto));
        self.metrics.record_phase_crypto(phase, phase_crypto);
        // The batch pass verified frames the *next* phase consumes; carry
        // its cost there, the engine's attribution rule.
        self.carry_crypto = batch_crypto;
        self.phase += 1;
        Ok(())
    }

    fn verdict(&self, reason: DegradationReason) -> Box<DegradationVerdict> {
        Box::new(DegradationVerdict {
            phase: self.phase,
            reason,
            suspected: self.suspected.iter().copied().collect(),
            failed_links: self.stats.failed_links.clone(),
            stalled_workers: vec![],
            stats: self.stats.clone(),
        })
    }

    fn into_decided(mut self, tick: u64, now: Duration) -> InstanceOutcome {
        let mut metrics = std::mem::take(&mut self.metrics);
        let tail =
            std::mem::take(&mut self.step_crypto).add(&std::mem::take(&mut self.carry_crypto));
        metrics.absorb_crypto(tail);
        metrics.phases = self.phases;
        let mut correct = std::mem::take(&mut self.correct);
        for p in &self.suspected {
            correct[p.index()] = false;
        }
        InstanceOutcome {
            id: self.id,
            submitted_tick: self.submitted_tick,
            admitted_tick: self.admitted_tick,
            settled_tick: tick,
            submitted_at: self.submitted_at,
            admitted_at: self.admitted_at,
            decided_at: now,
            result: Ok(InstanceRun {
                decisions: self.decisions.take().expect("finalized"),
                correct,
                metrics,
                stats: std::mem::take(&mut self.stats),
                suspected: self.suspected.iter().copied().collect(),
            }),
        }
    }

    fn into_degraded(
        self,
        tick: u64,
        now: Duration,
        verdict: Box<DegradationVerdict>,
    ) -> InstanceOutcome {
        InstanceOutcome {
            id: self.id,
            submitted_tick: self.submitted_tick,
            admitted_tick: self.admitted_tick,
            settled_tick: tick,
            submitted_at: self.submitted_at,
            admitted_at: self.admitted_at,
            decided_at: now,
            result: Err(verdict),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_seeds_are_distinct_and_stable() {
        let a = instance_seed(7, 0);
        let b = instance_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(a, instance_seed(7, 0));
        assert_ne!(a, instance_seed(8, 0), "base seed matters");
    }

    #[test]
    fn instance_seeds_never_collide_within_a_fleet() {
        // The documented injectivity guarantee: under one base seed, no
        // two instances may ever share a chaos rng stream. Exercise a
        // fleet far larger than any real session, several bases, plus the
        // adversarial-looking base 0 and base = multiplier.
        for base in [0u64, 7, 11, 77, 0x9E37_79B9_7F4A_7C15, u64::MAX] {
            let mut seen = std::collections::HashSet::with_capacity(4096);
            for instance in 0..4096u64 {
                assert!(
                    seen.insert(instance_seed(base, instance)),
                    "seed collision under base {base} at instance {instance}"
                );
            }
        }
        // And the first rng draws differ too — the streams themselves,
        // not just the seeds, are distinct for neighbouring tickets.
        let mut a = SimRng::new(instance_seed(77, 0));
        let mut b = SimRng::new(instance_seed(77, 1));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn poisson_arrivals_are_seeded_and_plausible() {
        let schedule: Vec<usize> = PoissonArrivals::new(42, 2.0).take(256).collect();
        let replay: Vec<usize> = PoissonArrivals::new(42, 2.0).take(256).collect();
        assert_eq!(schedule, replay, "same seed must replay byte-identically");
        let other: Vec<usize> = PoissonArrivals::new(43, 2.0).take(256).collect();
        assert_ne!(schedule, other, "different seeds must differ");
        let mean = schedule.iter().sum::<usize>() as f64 / schedule.len() as f64;
        assert!(
            (1.5..2.5).contains(&mean),
            "sample mean {mean} implausible for rate 2.0"
        );
        let mut zero = PoissonArrivals::new(1, 0.0);
        assert_eq!(zero.next_arrivals(), 0, "rate 0 never arrives");
    }

    #[test]
    fn empty_session_drains_immediately() {
        let service = BaService::new(SvcConfig::default());
        let report = service.session::<Value>().drain();
        assert_eq!(report.outcomes.len(), 0);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.decided(), 0);
        assert_eq!(report.degraded(), 0);
        assert_eq!(report.shed_count(), 0);
        assert!(report.accounting_balanced());
    }

    #[test]
    fn empty_service_run_settles_immediately() {
        let service = BaService::new(SvcConfig::default());
        #[allow(deprecated)]
        let report = service.run::<Value>(vec![]);
        assert_eq!(report.outcomes.len(), 0);
        assert_eq!(report.ticks, 0);
    }

    #[test]
    fn svc_config_builders_cover_every_knob() {
        let cfg = SvcConfig::new()
            .with_threads(3)
            .with_max_inflight(5)
            .with_admit_per_tick(2)
            .with_max_retries(9)
            .with_deadline_ticks(33)
            .with_queue_capacity(7)
            .with_admission(AdmissionPolicy::ShedOldest);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.max_inflight, 5);
        assert_eq!(cfg.admit_per_tick, 2);
        assert_eq!(cfg.max_retries, 9);
        assert_eq!(cfg.deadline_ticks, 33);
        assert_eq!(cfg.queue_capacity, 7);
        assert_eq!(cfg.admission, AdmissionPolicy::ShedOldest);
    }
}
