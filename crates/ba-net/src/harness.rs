//! Binding between the runtime and the `ba-algos` checkable registry: run
//! any [`CheckTarget`] over the message-passing runtime, and prove
//! byte-identical equivalence with the lock-step engine under a reliable
//! wire.

use crate::chaos::ChaosProfile;
use crate::runtime::{NetConfig, NetRuntime};
use crate::svc::{BaService, InstanceSpec, SvcConfig};
use crate::verdict::{DegradationVerdict, NetStats};
use ba_algos::checkable::{CheckConfig, CheckTarget};
use ba_crypto::{Chain, ProcessId, Value, VerifierCache};
use ba_sim::schedule::ScheduleError;
use ba_sim::trace::Trace;
use ba_sim::{check_byzantine_agreement, AgreementViolation, Metrics, RunOutcome, RunVerdict};
use std::sync::Arc;
use std::time::Duration;

/// Why a net-driven check run produced no decisions.
#[derive(Clone, Debug)]
pub enum NetRunError {
    /// The schedule could not be compiled onto the target's actors.
    Schedule(ScheduleError),
    /// The runtime aborted with a graceful-degradation verdict.
    Degraded(Box<DegradationVerdict>),
}

impl std::fmt::Display for NetRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetRunError::Schedule(err) => write!(f, "schedule error: {err}"),
            NetRunError::Degraded(verdict) => write!(f, "{verdict}"),
        }
    }
}

impl std::error::Error for NetRunError {}

/// One completed net-driven run of a checkable target.
#[derive(Clone, Debug)]
pub struct NetRun {
    /// Each processor's decision.
    pub decisions: Vec<Option<Value>>,
    /// Correctness flags after suspicion (see
    /// [`NetOutcome::correct`](crate::runtime::NetOutcome::correct)).
    pub correct: Vec<bool>,
    /// Logical traffic accounting.
    pub metrics: Metrics,
    /// Physical wire statistics.
    pub stats: NetStats,
    /// Suspected senders, in id order.
    pub suspected: Vec<ProcessId>,
    /// The Byzantine Agreement verdict over the post-suspicion correct
    /// set.
    pub agreement: Result<RunVerdict, AgreementViolation>,
}

impl NetRun {
    /// Whether the run violated Byzantine Agreement — on a sound target
    /// under within-budget chaos this must never be true.
    pub fn violated(&self) -> bool {
        self.agreement.is_err()
    }
}

/// Runs `target` under `cfg`'s schedule through the message-passing
/// runtime, with `net.fault_budget` forced to `cfg.t` (the schedule's own
/// budget) and `net.threads` taken from the config.
///
/// # Errors
/// [`NetRunError::Schedule`] when the schedule does not compile,
/// [`NetRunError::Degraded`] when the runtime aborted.
pub fn run_target(
    target: &CheckTarget,
    cfg: &CheckConfig,
    net: &NetConfig,
    chaos: &ChaosProfile,
) -> Result<NetRun, NetRunError> {
    let setup = target.build(cfg).map_err(NetRunError::Schedule)?;
    let netcfg = NetConfig {
        threads: net.threads,
        fault_budget: cfg.t,
        ..net.clone()
    };
    let runtime = NetRuntime::new(setup.actors, netcfg)
        .with_registry(&setup.registry)
        .with_link_drops(cfg.spec.link_drops.iter().copied())
        .with_chaos(chaos.clone());
    let outcome = runtime.run(setup.phases).map_err(NetRunError::Degraded)?;
    // The checker only reads decisions and correctness flags; metrics and
    // trace in the shim outcome are irrelevant to the verdict.
    let shim: RunOutcome<Chain> = RunOutcome {
        decisions: outcome.decisions.clone(),
        correct: outcome.correct.clone(),
        metrics: Metrics::default(),
        trace: Trace::default(),
    };
    let agreement = check_byzantine_agreement(&shim, cfg.transmitter, cfg.value);
    Ok(NetRun {
        decisions: outcome.decisions,
        correct: outcome.correct,
        metrics: outcome.metrics,
        stats: outcome.stats,
        suspected: outcome.suspected,
        agreement,
    })
}

/// One multiplexed service run over a fleet of checkable-target instances.
#[derive(Debug)]
pub struct MultiplexRun {
    /// Per instance, in admission order: the completed run (with its own
    /// agreement verdict) or that instance's degradation verdict.
    pub runs: Vec<Result<NetRun, Box<DegradationVerdict>>>,
    /// Per instance, in submission order: wall-clock
    /// submission-to-decision latency (queue wait included).
    pub latencies: Vec<Duration>,
    /// Fleet-wide wire statistics, including the flush-coalescing
    /// counters.
    pub stats: NetStats,
    /// Service ticks executed.
    pub ticks: u64,
    /// Wall-clock duration of the whole service run.
    pub elapsed: Duration,
    /// Verifier-cache counters of the fleet-shared cache after the run:
    /// `(hits, misses, evictions)`.
    pub cache: (u64, u64, u64),
}

/// Runs one instance of `target` per entry of `cfgs` through the
/// multiplexing service ([`BaService`]): pipelined phases, shared-wire
/// batched flushes, one fleet-shared verifier cache. Every config must
/// share `n` and `seed` — the service's "one cluster identity" invariant
/// that makes cache sharing sound; values and schedules may differ per
/// instance.
///
/// Instance `i` draws chaos fates from
/// [`instance_seed`](crate::svc::instance_seed)`(chaos.seed, i)`, so its
/// outcome is byte-identical to [`run_target`] under
/// `chaos.reseeded(instance_seed(chaos.seed, i))`.
///
/// # Panics
/// When `cfgs` mix different `n` or `seed` values.
///
/// # Errors
/// [`NetRunError::Schedule`] when any instance's schedule does not
/// compile. Per-instance degradation is *not* an error: it lands in that
/// instance's slot of [`MultiplexRun::runs`].
pub fn run_target_multiplexed(
    target: &CheckTarget,
    cfgs: &[CheckConfig],
    svc: &SvcConfig,
    chaos: &ChaosProfile,
) -> Result<MultiplexRun, NetRunError> {
    if let Some(first) = cfgs.first() {
        assert!(
            cfgs.iter().all(|c| c.n == first.n && c.seed == first.seed),
            "multiplexed instances must share one cluster identity (n, seed)"
        );
    }
    let cache = Arc::new(VerifierCache::new());
    let mut specs = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let setup = target
            .build_shared(cfg, &cache)
            .map_err(NetRunError::Schedule)?;
        specs.push(InstanceSpec {
            actors: setup.actors,
            phases: setup.phases,
            fault_budget: cfg.t,
            link_drops: cfg.spec.link_drops.clone(),
            registry: Some(setup.registry),
        });
    }
    let mut cfg_svc = svc.clone();
    cfg_svc.queue_capacity = cfg_svc.queue_capacity.max(specs.len());
    let service = BaService::new(cfg_svc)
        .with_chaos(chaos.clone())
        .with_shared_cache(Arc::clone(&cache));
    let mut session = service.session();
    for spec in specs {
        session
            .submit(spec)
            .expect("queue widened to hold the whole fleet");
    }
    let report = session.drain();

    let mut runs = Vec::with_capacity(report.outcomes.len());
    let mut latencies = Vec::with_capacity(report.outcomes.len());
    for (outcome, cfg) in report.outcomes.into_iter().zip(cfgs) {
        latencies.push(outcome.latency());
        runs.push(outcome.result.map(|run| {
            let shim: RunOutcome<Chain> = RunOutcome {
                decisions: run.decisions.clone(),
                correct: run.correct.clone(),
                metrics: Metrics::default(),
                trace: Trace::default(),
            };
            let agreement = check_byzantine_agreement(&shim, cfg.transmitter, cfg.value);
            NetRun {
                decisions: run.decisions,
                correct: run.correct,
                metrics: run.metrics,
                stats: run.stats,
                suspected: run.suspected,
                agreement,
            }
        }));
    }
    Ok(MultiplexRun {
        runs,
        latencies,
        stats: report.stats,
        ticks: report.ticks,
        elapsed: report.elapsed,
        cache: (cache.hits(), cache.misses(), cache.evictions()),
    })
}

/// Proves the runtime and the lock-step engine agree byte-for-byte on
/// `target` under `cfg` with a reliable wire and `threads` workers.
///
/// # Errors
/// A description of the first divergence: decisions, correctness flags, or
/// any [`Metrics`] field.
pub fn check_equivalence(
    target: &CheckTarget,
    cfg: &CheckConfig,
    threads: usize,
) -> Result<(), String> {
    let lockstep = target.run(cfg);
    if let Some(err) = &lockstep.schedule_error {
        return Err(format!("lock-step schedule error: {err}"));
    }
    let setup = target
        .build(cfg)
        .map_err(|e| format!("net schedule error: {e}"))?;
    // Re-run the engine from a fresh build to get its raw outcome (the
    // CheckOutcome only carries summary counts).
    let mut sim = ba_sim::Simulation::new(setup.actors)
        .with_threads(cfg.threads)
        .with_registry(&setup.registry)
        .with_link_drops(cfg.spec.link_drops.iter().copied());
    let engine = sim.run(setup.phases);

    let net_setup = target
        .build(cfg)
        .map_err(|e| format!("net schedule error: {e}"))?;
    let netcfg = NetConfig {
        threads,
        fault_budget: cfg.t,
        ..NetConfig::default()
    };
    let runtime = NetRuntime::new(net_setup.actors, netcfg)
        .with_registry(&net_setup.registry)
        .with_link_drops(cfg.spec.link_drops.iter().copied())
        .with_chaos(ChaosProfile::reliable());
    let net = runtime
        .run(net_setup.phases)
        .map_err(|v| format!("net degraded under reliable wire: {v}"))?;

    if net.decisions != engine.decisions {
        return Err(format!(
            "decisions diverge: engine {:?}, net {:?}",
            engine.decisions, net.decisions
        ));
    }
    if net.correct != engine.correct {
        return Err(format!(
            "correct flags diverge: engine {:?}, net {:?}",
            engine.correct, net.correct
        ));
    }
    if net.metrics != engine.metrics {
        return Err(format!(
            "metrics diverge:\n  engine: {:?}\n  net:    {:?}",
            engine.metrics, net.metrics
        ));
    }
    if !net.suspected.is_empty() {
        return Err(format!(
            "reliable wire suspected {:?} — nothing should fail",
            net.suspected
        ));
    }
    Ok(())
}
