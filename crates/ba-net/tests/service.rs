//! Acceptance tests for the `ba-svc` multiplexer: K concurrent instances
//! decide byte-identically to K standalone runs — at 1 and 4 workers, with
//! and without chaos — degradation verdicts stay per-instance, flush
//! coalescing is visible in the counters, and the fleet-shared verifier
//! cache does strictly less crypto work than isolated runs.

use ba_algos::checkable::{find_target, targets, CheckConfig};
use ba_crypto::{ProcessId, Value};
use ba_net::{
    instance_seed, run_target, run_target_multiplexed, ChaosProfile, DegradationReason, FailedLink,
    LinkChaos, MultiplexRun, NetConfig, NetRunError, NetStats, SvcConfig,
};
use ba_sim::schedule::{FaultBehavior, ScheduleSpec};

fn cfg_for(target_name: &str, value: Value, spec: ScheduleSpec) -> CheckConfig {
    let (n, t) = if target_name == "algorithm1" {
        (5, 2)
    } else {
        (4, 1)
    };
    CheckConfig {
        n,
        t,
        value,
        seed: 11,
        threads: 1,
        spec,
    }
}

fn splitting_spec() -> ScheduleSpec {
    ScheduleSpec {
        faults: vec![(
            ProcessId(0),
            FaultBehavior::OmitTo {
                targets: vec![ProcessId(2)],
            },
        )],
        link_drops: vec![],
    }
}

/// The wire-level fields both execution paths populate identically. The
/// flush counters are deliberately excluded: a standalone runtime records
/// its own solo flushes while a multiplexed instance's flushes are
/// accounted fleet-wide.
fn wire_fields(stats: &NetStats) -> (u64, u64, u64, u64, u64, u64, u64, Vec<FailedLink>) {
    (
        stats.frames_delivered,
        stats.frames_failed,
        stats.physical_transmissions,
        stats.retransmissions,
        stats.duplicates_suppressed,
        stats.acks_lost,
        stats.max_ticks_in_phase,
        stats.failed_links.clone(),
    )
}

/// A fleet of 3 instances per target: mixed values, one instance carrying
/// the splitting schedule so the faulty-sender path is exercised too.
fn fleet_cfgs(target_name: &str) -> Vec<CheckConfig> {
    vec![
        cfg_for(target_name, Value::ONE, ScheduleSpec::default()),
        cfg_for(target_name, Value::ZERO, ScheduleSpec::default()),
        cfg_for(target_name, Value::ONE, splitting_spec()),
    ]
}

#[test]
fn multiplexed_instances_match_standalone_runs_for_every_target() {
    for target in targets() {
        let cfgs = fleet_cfgs(target.name);
        for chaos in [ChaosProfile::reliable(), ChaosProfile::lossy(77, 150)] {
            for threads in [1usize, 4] {
                let svc = SvcConfig {
                    threads,
                    admit_per_tick: 1, // stagger admissions: phases pipeline
                    ..SvcConfig::default()
                };
                let mux = run_target_multiplexed(target, &cfgs, &svc, &chaos)
                    .unwrap_or_else(|e| panic!("{} threads={threads}: {e}", target.name));
                assert_eq!(mux.runs.len(), cfgs.len());
                for (i, (mux_run, cfg)) in mux.runs.iter().zip(&cfgs).enumerate() {
                    let ctx = format!("{} instance={i} threads={threads}", target.name);
                    let solo_chaos = chaos.clone().reseeded(instance_seed(chaos.seed, i as u64));
                    let solo = run_target(target, cfg, &NetConfig::default(), &solo_chaos);
                    match (mux_run, solo) {
                        (Ok(m), Ok(s)) => {
                            assert_eq!(m.decisions, s.decisions, "{ctx}");
                            assert_eq!(m.correct, s.correct, "{ctx}");
                            assert_eq!(m.suspected, s.suspected, "{ctx}");
                            assert_eq!(m.agreement, s.agreement, "{ctx}");
                            assert_eq!(
                                m.metrics.messages_by_correct, s.metrics.messages_by_correct,
                                "{ctx}"
                            );
                            assert_eq!(
                                m.metrics.omitted_messages, s.metrics.omitted_messages,
                                "{ctx}"
                            );
                            assert_eq!(wire_fields(&m.stats), wire_fields(&s.stats), "{ctx}");
                        }
                        (Err(m), Err(NetRunError::Degraded(s))) => {
                            assert_eq!(m.phase, s.phase, "{ctx}");
                            assert_eq!(m.reason, s.reason, "{ctx}");
                            assert_eq!(m.suspected, s.suspected, "{ctx}");
                            assert_eq!(m.failed_links, s.failed_links, "{ctx}");
                        }
                        (m, s) => panic!("{ctx}: multiplexed {m:?} but standalone {s:?}"),
                    }
                }
            }
        }
    }
}

#[test]
fn multiplexed_runs_are_worker_count_independent() {
    // Not just decisions: metrics (including deferred-mode crypto
    // counters), wire stats, tick count and the fleet flush counters must
    // be byte-identical at any worker count.
    let summarize = |mux: &MultiplexRun| {
        let per_instance: Vec<_> = mux
            .runs
            .iter()
            .map(|r| match r {
                Ok(run) => (
                    Some((
                        run.decisions.clone(),
                        run.correct.clone(),
                        run.metrics.clone(),
                        run.stats.clone(),
                    )),
                    None,
                ),
                Err(v) => (None, Some((*v).clone())),
            })
            .collect();
        (per_instance, mux.stats.clone(), mux.ticks, mux.cache)
    };
    for target in targets() {
        let cfgs = fleet_cfgs(target.name);
        for chaos in [ChaosProfile::reliable(), ChaosProfile::stress(91)] {
            let run = |threads: usize| {
                let svc = SvcConfig {
                    threads,
                    admit_per_tick: 2,
                    ..SvcConfig::default()
                };
                run_target_multiplexed(target, &cfgs, &svc, &chaos)
                    .unwrap_or_else(|e| panic!("{}: {e}", target.name))
            };
            let one = run(1);
            let four = run(4);
            assert_eq!(
                summarize(&one),
                summarize(&four),
                "{} diverges across worker counts",
                target.name
            );
        }
    }
}

#[test]
fn coalesced_flushes_are_batched_across_instances() {
    let target = find_target("ds-broadcast").unwrap();
    let cfg = cfg_for(target.name, Value::ONE, ScheduleSpec::default());
    let cfgs = vec![cfg.clone(), cfg.clone(), cfg.clone(), cfg.clone()];

    // All four instances admitted in one tick march phases in lockstep, so
    // every directed link's flush carries four instances' frames.
    let svc = SvcConfig {
        admit_per_tick: 8,
        ..SvcConfig::default()
    };
    let mux = run_target_multiplexed(target, &cfgs, &svc, &ChaosProfile::reliable()).unwrap();
    assert!(
        mux.stats.batched_flushes > 0,
        "concurrent instances must share flushes: {}",
        mux.stats
    );
    assert!(mux.stats.max_frames_per_flush >= 4, "{}", mux.stats);
    // Under a reliable wire every coalesced frame is delivered exactly once.
    assert_eq!(mux.stats.coalesced_frames, mux.stats.frames_delivered);
    assert!(
        mux.stats.flushes < mux.stats.coalesced_frames,
        "fewer wire sends than frames is the whole point: {}",
        mux.stats
    );

    // One instance at a time (no multiplexing) has nothing to coalesce:
    // ds-broadcast stages at most one frame per link per phase.
    let serial = SvcConfig {
        max_inflight: 1,
        admit_per_tick: 1,
        ..SvcConfig::default()
    };
    let solo = run_target_multiplexed(target, &cfgs, &serial, &ChaosProfile::reliable()).unwrap();
    assert_eq!(solo.stats.batched_flushes, 0, "{}", solo.stats);
    assert_eq!(solo.stats.frames_delivered, mux.stats.frames_delivered);
}

#[test]
fn shared_cache_verifies_repeated_prefixes_once_fleet_wide() {
    // Six identical instances, admitted one per tick: instance k's phase-p
    // verifications were already published by instance k-1's identical
    // phase-p work, so the fleet does strictly less signature verification
    // than six isolated runs — the cache is shared, not merely present.
    let target = find_target("ds-broadcast").unwrap();
    let cfg = cfg_for(target.name, Value::ONE, ScheduleSpec::default());
    let cfgs = vec![cfg.clone(); 6];
    let svc = SvcConfig {
        admit_per_tick: 1,
        ..SvcConfig::default()
    };
    let mux = run_target_multiplexed(target, &cfgs, &svc, &ChaosProfile::reliable()).unwrap();
    let mux_verifications: u64 = mux
        .runs
        .iter()
        .map(|r| r.as_ref().unwrap().metrics.crypto.sig_verifications)
        .sum();
    let solo_verifications: u64 = (0..6)
        .map(|_| {
            run_target(
                target,
                &cfg,
                &NetConfig::default(),
                &ChaosProfile::reliable(),
            )
            .unwrap()
            .metrics
            .crypto
            .sig_verifications
        })
        .sum();
    assert!(
        mux_verifications < solo_verifications,
        "fleet-shared cache must save work: multiplexed {mux_verifications} vs isolated {solo_verifications}"
    );
    let (hits, _, evictions) = mux.cache;
    assert!(hits > 0, "the shared cache must actually hit");
    assert_eq!(evictions, 0, "this workload fits the default cap");
}

#[test]
fn degradation_verdicts_stay_per_instance() {
    // A fleet-wide dead link 1 -> 3 under budget t = 1: instances with no
    // scheduled faults suspect p1 and still decide; the instance whose
    // schedule already spends the budget on the transmitter degrades with
    // its own FaultBudgetExceeded verdict. The service settles them all.
    let target = find_target("ds-broadcast").unwrap();
    let cfgs = vec![
        cfg_for(target.name, Value::ONE, ScheduleSpec::default()),
        cfg_for(target.name, Value::ONE, splitting_spec()),
        cfg_for(target.name, Value::ZERO, ScheduleSpec::default()),
    ];
    let chaos = ChaosProfile::reliable().with_link(ProcessId(1), ProcessId(3), LinkChaos::dead());
    let svc = SvcConfig::default();
    let mux = run_target_multiplexed(target, &cfgs, &svc, &chaos).unwrap();
    assert_eq!(mux.runs.len(), 3);

    let healthy = mux.runs[0].as_ref().expect("within budget: decides");
    assert_eq!(healthy.suspected, vec![ProcessId(1)]);
    assert!(!healthy.violated(), "{:?}", healthy.agreement);

    let degraded = mux.runs[1].as_ref().expect_err("budget blown: degrades");
    assert!(
        matches!(
            degraded.reason,
            DegradationReason::FaultBudgetExceeded {
                observed: 2,
                budget: 1
            }
        ),
        "{degraded}"
    );
    assert_eq!(degraded.suspected, vec![ProcessId(1)]);

    let other = mux.runs[2].as_ref().expect("unaffected by neighbour");
    assert!(!other.violated(), "{:?}", other.agreement);
    assert_eq!(
        other.decisions.iter().flatten().count(),
        4,
        "every processor of the healthy instance decides"
    );
}

#[test]
fn latencies_and_ticks_reflect_pipelining() {
    // K staggered instances over a (phases + 1)-tick protocol: pipelining
    // must finish in far fewer ticks than K serial protocol runs, and
    // every decided instance reports a latency.
    let target = find_target("ds-broadcast").unwrap();
    let cfg = cfg_for(target.name, Value::ONE, ScheduleSpec::default());
    let k = 8usize;
    let cfgs = vec![cfg; k];
    let pipelined = SvcConfig {
        admit_per_tick: 1,
        ..SvcConfig::default()
    };
    let mux = run_target_multiplexed(target, &cfgs, &pipelined, &ChaosProfile::reliable()).unwrap();
    assert_eq!(mux.latencies.len(), k);
    // ds-broadcast t=1: 2 phases + finalize = 3 steps; +1 settle tick.
    // Pipelined: ~K + phases ticks instead of K * (phases + 2).
    assert!(
        mux.ticks <= (k as u64) + 6,
        "pipelining should overlap instances: {} ticks",
        mux.ticks
    );

    let serial = SvcConfig {
        max_inflight: 1,
        admit_per_tick: 1,
        ..SvcConfig::default()
    };
    let solo = run_target_multiplexed(target, &cfgs, &serial, &ChaosProfile::reliable()).unwrap();
    assert!(
        solo.ticks > mux.ticks,
        "serial ({}) must need more ticks than pipelined ({})",
        solo.ticks,
        mux.ticks
    );
}
