//! Acceptance tests for the `ba-svc` service layer: K concurrent instances
//! decide byte-identically to K standalone runs — at 1 and 4 workers, with
//! and without chaos — degradation verdicts stay per-instance, flush
//! coalescing is visible in the counters, the fleet-shared verifier cache
//! does strictly less crypto work than isolated runs, and the open-loop
//! session API (Poisson arrivals, bounded admission queue, backpressure)
//! is deterministic with exact accounting.

use ba_algos::checkable::{find_target, targets, CheckConfig, CheckTarget};
use ba_crypto::{Chain, ProcessId, Value, VerifierCache};
use ba_net::{
    instance_seed, run_target, run_target_multiplexed, AdmissionError, AdmissionPolicy,
    AdmissionVerdict, BaService, ChaosProfile, DegradationReason, FailedLink, InstanceSpec,
    LinkChaos, MultiplexRun, NetConfig, NetRunError, NetStats, PoissonArrivals, SvcConfig,
    SvcReport, TicketOutcome, TicketStatus,
};
use ba_sim::schedule::{FaultBehavior, ScheduleSpec};
use std::sync::Arc;

fn cfg_for(target_name: &str, value: Value, spec: ScheduleSpec) -> CheckConfig {
    let (n, t) = if target_name == "algorithm1" {
        (5, 2)
    } else {
        (4, 1)
    };
    CheckConfig::new(n, t, value, 11, 1, spec)
}

fn splitting_spec() -> ScheduleSpec {
    ScheduleSpec {
        faults: vec![(
            ProcessId(0),
            FaultBehavior::OmitTo {
                targets: vec![ProcessId(2)],
            },
        )],
        link_drops: vec![],
    }
}

/// The wire-level fields both execution paths populate identically. The
/// flush counters are deliberately excluded: a standalone runtime records
/// its own solo flushes while a multiplexed instance's flushes are
/// accounted fleet-wide.
fn wire_fields(stats: &NetStats) -> (u64, u64, u64, u64, u64, u64, u64, Vec<FailedLink>) {
    (
        stats.frames_delivered,
        stats.frames_failed,
        stats.physical_transmissions,
        stats.retransmissions,
        stats.duplicates_suppressed,
        stats.acks_lost,
        stats.max_ticks_in_phase,
        stats.failed_links.clone(),
    )
}

/// A fleet of 3 instances per target: mixed values, one instance carrying
/// the splitting schedule so the faulty-sender path is exercised too.
fn fleet_cfgs(target_name: &str) -> Vec<CheckConfig> {
    vec![
        cfg_for(target_name, Value::ONE, ScheduleSpec::default()),
        cfg_for(target_name, Value::ZERO, ScheduleSpec::default()),
        cfg_for(target_name, Value::ONE, splitting_spec()),
    ]
}

#[test]
fn multiplexed_instances_match_standalone_runs_for_every_target() {
    for target in targets() {
        let cfgs = fleet_cfgs(target.name);
        for chaos in [ChaosProfile::reliable(), ChaosProfile::lossy(77, 150)] {
            for threads in [1usize, 4] {
                // Stagger admissions so phases pipeline.
                let svc = SvcConfig::new()
                    .with_threads(threads)
                    .with_admit_per_tick(1);
                let mux = run_target_multiplexed(target, &cfgs, &svc, &chaos)
                    .unwrap_or_else(|e| panic!("{} threads={threads}: {e}", target.name));
                assert_eq!(mux.runs.len(), cfgs.len());
                for (i, (mux_run, cfg)) in mux.runs.iter().zip(&cfgs).enumerate() {
                    let ctx = format!("{} instance={i} threads={threads}", target.name);
                    let solo_chaos = chaos.clone().reseeded(instance_seed(chaos.seed, i as u64));
                    let solo = run_target(target, cfg, &NetConfig::default(), &solo_chaos);
                    match (mux_run, solo) {
                        (Ok(m), Ok(s)) => {
                            assert_eq!(m.decisions, s.decisions, "{ctx}");
                            assert_eq!(m.correct, s.correct, "{ctx}");
                            assert_eq!(m.suspected, s.suspected, "{ctx}");
                            assert_eq!(m.agreement, s.agreement, "{ctx}");
                            assert_eq!(
                                m.metrics.messages_by_correct, s.metrics.messages_by_correct,
                                "{ctx}"
                            );
                            assert_eq!(
                                m.metrics.omitted_messages, s.metrics.omitted_messages,
                                "{ctx}"
                            );
                            assert_eq!(wire_fields(&m.stats), wire_fields(&s.stats), "{ctx}");
                        }
                        (Err(m), Err(NetRunError::Degraded(s))) => {
                            assert_eq!(m.phase, s.phase, "{ctx}");
                            assert_eq!(m.reason, s.reason, "{ctx}");
                            assert_eq!(m.suspected, s.suspected, "{ctx}");
                            assert_eq!(m.failed_links, s.failed_links, "{ctx}");
                        }
                        (m, s) => panic!("{ctx}: multiplexed {m:?} but standalone {s:?}"),
                    }
                }
            }
        }
    }
}

#[test]
fn multiplexed_runs_are_worker_count_independent() {
    // Not just decisions: metrics (including deferred-mode crypto
    // counters), wire stats, tick count and the fleet flush counters must
    // be byte-identical at any worker count.
    let summarize = |mux: &MultiplexRun| {
        let per_instance: Vec<_> = mux
            .runs
            .iter()
            .map(|r| match r {
                Ok(run) => (
                    Some((
                        run.decisions.clone(),
                        run.correct.clone(),
                        run.metrics.clone(),
                        run.stats.clone(),
                    )),
                    None,
                ),
                Err(v) => (None, Some((*v).clone())),
            })
            .collect();
        (per_instance, mux.stats.clone(), mux.ticks, mux.cache)
    };
    for target in targets() {
        let cfgs = fleet_cfgs(target.name);
        for chaos in [ChaosProfile::reliable(), ChaosProfile::stress(91)] {
            let run = |threads: usize| {
                let svc = SvcConfig::new()
                    .with_threads(threads)
                    .with_admit_per_tick(2);
                run_target_multiplexed(target, &cfgs, &svc, &chaos)
                    .unwrap_or_else(|e| panic!("{}: {e}", target.name))
            };
            let one = run(1);
            let four = run(4);
            assert_eq!(
                summarize(&one),
                summarize(&four),
                "{} diverges across worker counts",
                target.name
            );
        }
    }
}

#[test]
fn coalesced_flushes_are_batched_across_instances() {
    let target = find_target("ds-broadcast").unwrap();
    let cfg = cfg_for(target.name, Value::ONE, ScheduleSpec::default());
    let cfgs = vec![cfg.clone(), cfg.clone(), cfg.clone(), cfg.clone()];

    // All four instances admitted in one tick march phases in lockstep, so
    // every directed link's flush carries four instances' frames.
    let svc = SvcConfig::new().with_admit_per_tick(8);
    let mux = run_target_multiplexed(target, &cfgs, &svc, &ChaosProfile::reliable()).unwrap();
    assert!(
        mux.stats.batched_flushes > 0,
        "concurrent instances must share flushes: {}",
        mux.stats
    );
    assert!(mux.stats.max_frames_per_flush >= 4, "{}", mux.stats);
    // Under a reliable wire every coalesced frame is delivered exactly once.
    assert_eq!(mux.stats.coalesced_frames, mux.stats.frames_delivered);
    assert!(
        mux.stats.flushes < mux.stats.coalesced_frames,
        "fewer wire sends than frames is the whole point: {}",
        mux.stats
    );

    // One instance at a time (no multiplexing) has nothing to coalesce:
    // ds-broadcast stages at most one frame per link per phase.
    let serial = SvcConfig::new().with_max_inflight(1).with_admit_per_tick(1);
    let solo = run_target_multiplexed(target, &cfgs, &serial, &ChaosProfile::reliable()).unwrap();
    assert_eq!(solo.stats.batched_flushes, 0, "{}", solo.stats);
    assert_eq!(solo.stats.frames_delivered, mux.stats.frames_delivered);
}

#[test]
fn shared_cache_verifies_repeated_prefixes_once_fleet_wide() {
    // Six identical instances, admitted one per tick: instance k's phase-p
    // verifications were already published by instance k-1's identical
    // phase-p work, so the fleet does strictly less signature verification
    // than six isolated runs — the cache is shared, not merely present.
    let target = find_target("ds-broadcast").unwrap();
    let cfg = cfg_for(target.name, Value::ONE, ScheduleSpec::default());
    let cfgs = vec![cfg.clone(); 6];
    let svc = SvcConfig::new().with_admit_per_tick(1);
    let mux = run_target_multiplexed(target, &cfgs, &svc, &ChaosProfile::reliable()).unwrap();
    let mux_verifications: u64 = mux
        .runs
        .iter()
        .map(|r| r.as_ref().unwrap().metrics.crypto.sig_verifications)
        .sum();
    let solo_verifications: u64 = (0..6)
        .map(|_| {
            run_target(
                target,
                &cfg,
                &NetConfig::default(),
                &ChaosProfile::reliable(),
            )
            .unwrap()
            .metrics
            .crypto
            .sig_verifications
        })
        .sum();
    assert!(
        mux_verifications < solo_verifications,
        "fleet-shared cache must save work: multiplexed {mux_verifications} vs isolated {solo_verifications}"
    );
    let (hits, _, evictions) = mux.cache;
    assert!(hits > 0, "the shared cache must actually hit");
    assert_eq!(evictions, 0, "this workload fits the default cap");
}

#[test]
fn degradation_verdicts_stay_per_instance() {
    // A fleet-wide dead link 1 -> 3 under budget t = 1: instances with no
    // scheduled faults suspect p1 and still decide; the instance whose
    // schedule already spends the budget on the transmitter degrades with
    // its own FaultBudgetExceeded verdict. The service settles them all.
    let target = find_target("ds-broadcast").unwrap();
    let cfgs = vec![
        cfg_for(target.name, Value::ONE, ScheduleSpec::default()),
        cfg_for(target.name, Value::ONE, splitting_spec()),
        cfg_for(target.name, Value::ZERO, ScheduleSpec::default()),
    ];
    let chaos = ChaosProfile::reliable().with_link(ProcessId(1), ProcessId(3), LinkChaos::dead());
    let svc = SvcConfig::default();
    let mux = run_target_multiplexed(target, &cfgs, &svc, &chaos).unwrap();
    assert_eq!(mux.runs.len(), 3);

    let healthy = mux.runs[0].as_ref().expect("within budget: decides");
    assert_eq!(healthy.suspected, vec![ProcessId(1)]);
    assert!(!healthy.violated(), "{:?}", healthy.agreement);

    let degraded = mux.runs[1].as_ref().expect_err("budget blown: degrades");
    assert!(
        matches!(
            degraded.reason,
            DegradationReason::FaultBudgetExceeded {
                observed: 2,
                budget: 1
            }
        ),
        "{degraded}"
    );
    assert_eq!(degraded.suspected, vec![ProcessId(1)]);

    let other = mux.runs[2].as_ref().expect("unaffected by neighbour");
    assert!(!other.violated(), "{:?}", other.agreement);
    assert_eq!(
        other.decisions.iter().flatten().count(),
        4,
        "every processor of the healthy instance decides"
    );
}

#[test]
fn latencies_and_ticks_reflect_pipelining() {
    // K staggered instances over a (phases + 1)-tick protocol: pipelining
    // must finish in far fewer ticks than K serial protocol runs, and
    // every decided instance reports a latency.
    let target = find_target("ds-broadcast").unwrap();
    let cfg = cfg_for(target.name, Value::ONE, ScheduleSpec::default());
    let k = 8usize;
    let cfgs = vec![cfg; k];
    let pipelined = SvcConfig::new().with_admit_per_tick(1);
    let mux = run_target_multiplexed(target, &cfgs, &pipelined, &ChaosProfile::reliable()).unwrap();
    assert_eq!(mux.latencies.len(), k);
    // ds-broadcast t=1: 2 phases + finalize = 3 steps; +1 settle tick.
    // Pipelined: ~K + phases ticks instead of K * (phases + 2).
    assert!(
        mux.ticks <= (k as u64) + 6,
        "pipelining should overlap instances: {} ticks",
        mux.ticks
    );

    let serial = SvcConfig::new().with_max_inflight(1).with_admit_per_tick(1);
    let solo = run_target_multiplexed(target, &cfgs, &serial, &ChaosProfile::reliable()).unwrap();
    assert!(
        solo.ticks > mux.ticks,
        "serial ({}) must need more ticks than pipelined ({})",
        solo.ticks,
        mux.ticks
    );
}

// ---------------------------------------------------------------------------
// Open-loop session API
// ---------------------------------------------------------------------------

/// Builds the `i`-th open-loop spec (alternating values, shared cluster
/// identity) against the session's shared cache.
fn open_loop_spec(target: &CheckTarget, i: u64, cache: &Arc<VerifierCache>) -> InstanceSpec<Chain> {
    let value = if i.is_multiple_of(2) {
        Value::ONE
    } else {
        Value::ZERO
    };
    let cfg = cfg_for(target.name, value, ScheduleSpec::default());
    let setup = target.build_shared(&cfg, cache).expect("valid schedule");
    InstanceSpec {
        actors: setup.actors,
        phases: setup.phases,
        fault_budget: cfg.t,
        link_drops: vec![],
        registry: Some(setup.registry),
    }
}

/// Drives one seeded open-loop schedule — `arrival_seed` fixes the Poisson
/// draw, `threads` the worker count — and drains to the report.
fn open_loop_run(
    target: &CheckTarget,
    threads: usize,
    chaos: &ChaosProfile,
    arrival_seed: u64,
) -> SvcReport {
    let cache = Arc::new(VerifierCache::new());
    let service = BaService::new(
        SvcConfig::new()
            .with_threads(threads)
            .with_max_inflight(4)
            .with_admit_per_tick(2)
            .with_queue_capacity(4)
            .with_admission(AdmissionPolicy::ShedOldest),
    )
    .with_chaos(chaos.clone())
    .with_shared_cache(Arc::clone(&cache));
    let mut session = service.session();
    let mut arrivals = PoissonArrivals::new(arrival_seed, 1.5);
    let mut submitted = 0u64;
    for _ in 0..24 {
        for _ in 0..arrivals.next_arrivals() {
            session
                .submit(open_loop_spec(target, submitted, &cache))
                .expect("shed-oldest never refuses");
            submitted += 1;
        }
        session.tick();
    }
    session.drain()
}

/// Everything deterministic about a report: tick-domain timestamps,
/// results, admission log, shed set, queue and wire statistics — no
/// wall-clock fields.
fn report_fingerprint(report: &SvcReport) -> String {
    let outcomes: Vec<_> = report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.id,
                o.submitted_tick,
                o.admitted_tick,
                o.settled_tick,
                &o.result,
            )
        })
        .collect();
    format!(
        "{outcomes:?} | shed={:?} | log={:?} | queue={:?} | {:?} | ticks={} peak={}",
        report.shed,
        report.admission_log,
        report.queue,
        report.stats,
        report.ticks,
        report.peak_inflight
    )
}

#[test]
fn open_loop_schedule_is_deterministic_across_workers_and_chaos() {
    // Same arrival schedule + seeds => byte-identical per-instance
    // outcomes AND admission verdicts, at 1 and 4 workers, with and
    // without chaos. Only wall-clock durations may differ.
    let target = find_target("ds-broadcast").unwrap();
    for chaos in [ChaosProfile::reliable(), ChaosProfile::lossy(77, 150)] {
        let reference = open_loop_run(target, 1, &chaos, 42);
        assert!(reference.accounting_balanced(), "{:?}", reference.queue);
        assert!(
            reference.submitted() > 0 && reference.decided() > 0,
            "the schedule must offer and decide real load"
        );
        let want = report_fingerprint(&reference);
        for threads in [1usize, 4] {
            let got = report_fingerprint(&open_loop_run(target, threads, &chaos, 42));
            assert_eq!(got, want, "threads={threads} diverges under {chaos:?}");
        }
        // A different arrival seed is a genuinely different schedule.
        let other = report_fingerprint(&open_loop_run(target, 1, &chaos, 43));
        assert_ne!(other, want, "arrival seed must matter");
    }
}

#[test]
fn shed_oldest_keeps_exact_accounting_under_overload() {
    // Offer load far beyond saturation into a tiny queue: sheds must
    // occur, every shed must leave a structured record, and
    // submitted = decided + degraded + shed must hold exactly.
    let target = find_target("ds-broadcast").unwrap();
    let cache = Arc::new(VerifierCache::new());
    let service = BaService::new(
        SvcConfig::new()
            .with_max_inflight(2)
            .with_admit_per_tick(1)
            .with_queue_capacity(2)
            .with_admission(AdmissionPolicy::ShedOldest),
    )
    .with_shared_cache(Arc::clone(&cache));
    let mut session = service.session();
    let mut tickets = Vec::new();
    for i in 0..12u64 {
        tickets.push(session.submit(open_loop_spec(target, i, &cache)).unwrap());
        // No ticks between submits: the queue must overflow.
    }
    let shed_in_log = session
        .admission_log()
        .iter()
        .filter(|v| matches!(v, AdmissionVerdict::EnqueuedAfterShed { .. }))
        .count();
    assert!(shed_in_log > 0, "overload must shed");
    let report = session.drain();
    assert!(report.accounting_balanced(), "{:?}", report.queue);
    assert_eq!(report.submitted(), 12);
    assert_eq!(report.shed_count(), shed_in_log);
    assert_eq!(report.queue.shed, shed_in_log as u64);
    // Every shed record is coherent: the victim was submitted before it
    // was shed, and the displacing ticket is younger than the victim.
    for shed in &report.shed {
        assert!(shed.submitted_tick <= shed.shed_tick, "{shed}");
        assert!(shed.displaced_by > shed.ticket, "{shed}");
    }
    // Every ticket is accounted for exactly once: settled or shed.
    let settled: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
    let shed: Vec<u64> = report.shed.iter().map(|s| s.ticket.0).collect();
    let mut all: Vec<u64> = settled.iter().chain(&shed).copied().collect();
    all.sort_unstable();
    assert_eq!(all, (0..12).collect::<Vec<u64>>());
}

#[test]
fn reject_policy_refuses_with_structured_error() {
    let target = find_target("ds-broadcast").unwrap();
    let cache = Arc::new(VerifierCache::new());
    let service = BaService::new(
        SvcConfig::new()
            .with_max_inflight(1)
            .with_admit_per_tick(1)
            .with_queue_capacity(2)
            .with_admission(AdmissionPolicy::Reject),
    )
    .with_shared_cache(Arc::clone(&cache));
    let mut session = service.session();
    for i in 0..2u64 {
        session.submit(open_loop_spec(target, i, &cache)).unwrap();
    }
    let err = session
        .submit(open_loop_spec(target, 2, &cache))
        .expect_err("third submit must refuse");
    assert_eq!(err, AdmissionError::QueueFull { capacity: 2 });
    assert!(matches!(
        session.admission_log().last(),
        Some(AdmissionVerdict::Refused { .. })
    ));
    let report = session.drain();
    assert_eq!(report.submitted(), 2, "the refusal never got a ticket");
    assert_eq!(report.queue.rejected, 1);
    assert!(report.accounting_balanced());
}

#[test]
fn block_with_deadline_waits_for_space_and_never_deadlocks() {
    let target = find_target("ds-broadcast").unwrap();
    let cache = Arc::new(VerifierCache::new());
    let service = BaService::new(
        SvcConfig::new()
            .with_max_inflight(1)
            .with_admit_per_tick(1)
            .with_queue_capacity(1)
            .with_admission(AdmissionPolicy::BlockWithDeadline { deadline_ticks: 32 }),
    )
    .with_shared_cache(Arc::clone(&cache));
    let mut session = service.session();
    for i in 0..6u64 {
        session
            .submit(open_loop_spec(target, i, &cache))
            .expect("instances settle within the deadline, so waiting succeeds");
    }
    assert!(
        session
            .admission_log()
            .iter()
            .any(|v| matches!(v, AdmissionVerdict::EnqueuedAfterWait { .. })),
        "a saturated queue must actually block"
    );
    assert!(session.queue_stats().blocked_ticks > 0);
    let report = session.drain();
    assert_eq!(report.submitted(), 6);
    assert_eq!(report.decided(), 6, "nothing is lost by waiting");
    assert!(report.accounting_balanced());

    // A zero-tick deadline can never free space: the refusal must be the
    // structured DeadlineExpired error, not a hang or a panic.
    let cache2 = Arc::new(VerifierCache::new());
    let service = BaService::new(
        SvcConfig::new()
            .with_max_inflight(1)
            .with_admit_per_tick(1)
            .with_queue_capacity(1)
            .with_admission(AdmissionPolicy::BlockWithDeadline { deadline_ticks: 0 }),
    )
    .with_shared_cache(Arc::clone(&cache2));
    let mut session = service.session();
    session.submit(open_loop_spec(target, 0, &cache2)).unwrap();
    let err = session
        .submit(open_loop_spec(target, 1, &cache2))
        .expect_err("deadline 0 cannot wait");
    assert!(matches!(err, AdmissionError::DeadlineExpired { .. }));
    assert!(session.drain().accounting_balanced());
}

#[test]
fn tickets_report_status_and_outcomes_while_streaming() {
    let target = find_target("ds-broadcast").unwrap();
    let cache = Arc::new(VerifierCache::new());
    let service = BaService::new(
        SvcConfig::new()
            .with_max_inflight(1)
            .with_admit_per_tick(1)
            .with_queue_capacity(8),
    )
    .with_shared_cache(Arc::clone(&cache));
    let mut session = service.session();
    let first = session.submit(open_loop_spec(target, 0, &cache)).unwrap();
    let second = session.submit(open_loop_spec(target, 1, &cache)).unwrap();
    assert_eq!(session.status(first), TicketStatus::Queued { position: 0 });
    assert!(session.try_outcome(first).is_none(), "nothing settled yet");

    session.tick();
    assert!(matches!(
        session.status(first),
        TicketStatus::InFlight { .. }
    ));
    assert_eq!(session.status(second), TicketStatus::Queued { position: 0 });

    // Tick until the first instance settles; the second must still be
    // pending (max_inflight = 1 serializes them).
    while session.try_outcome(first).is_none() {
        session.tick();
    }
    let Some(TicketOutcome::Settled(outcome)) = session.try_outcome(first) else {
        panic!("first ticket must settle");
    };
    assert_eq!(outcome.ticket(), first);
    assert!(outcome.result.is_ok());
    assert!(outcome.submitted_at <= outcome.admitted_at);
    assert!(outcome.admitted_at <= outcome.decided_at);
    assert_eq!(
        outcome.latency(),
        outcome.queue_wait() + outcome.service_time()
    );
    assert!(session.try_outcome(second).is_none());

    // Drain still reports the peeked outcome: try_outcome is a poll, not
    // a take.
    let report = session.drain();
    assert_eq!(report.outcomes.len(), 2);
    assert_eq!(report.decided(), 2);
    let streamed: Vec<u64> = report.outcomes_iter().map(|o| o.id).collect();
    assert_eq!(streamed, vec![0, 1]);
    // The alias and the new accessor agree, and per-outcome timestamps
    // reconstruct the latencies without batch-level context.
    assert_eq!(
        report.decision_latencies(),
        report.submission_to_decision_latencies()
    );
    assert_eq!(
        report.submission_to_decision_latencies(),
        report
            .outcomes_iter()
            .map(|o| o.decided_at.saturating_sub(o.submitted_at))
            .collect::<Vec<_>>()
    );
}

#[test]
fn deprecated_run_wrapper_is_byte_identical_to_a_session() {
    // The old closed-loop entry point must produce exactly the report a
    // hand-driven session produces for the same fixed fleet — at 1 and 4
    // workers.
    let target = find_target("ds-broadcast").unwrap();
    for threads in [1usize, 4] {
        let svc = SvcConfig::new()
            .with_threads(threads)
            .with_queue_capacity(6);
        let via_session = {
            let cache = Arc::new(VerifierCache::new());
            let service = BaService::new(svc.clone()).with_shared_cache(Arc::clone(&cache));
            let mut session = service.session();
            for i in 0..6u64 {
                session.submit(open_loop_spec(target, i, &cache)).unwrap();
            }
            session.drain()
        };
        let via_run = {
            let cache = Arc::new(VerifierCache::new());
            let service = BaService::new(svc).with_shared_cache(Arc::clone(&cache));
            let specs = (0..6u64)
                .map(|i| open_loop_spec(target, i, &cache))
                .collect();
            #[allow(deprecated)]
            service.run(specs)
        };
        assert_eq!(
            report_fingerprint(&via_session),
            report_fingerprint(&via_run),
            "threads={threads}"
        );
    }
}

#[test]
fn instance_seeds_isolate_chaos_streams_within_one_fleet() {
    // The collision guarantee, observed end to end: two instances of one
    // fleet under a lossy profile must roll *different* fate streams —
    // identical specs, different wire histories. (Seed-level injectivity
    // is unit-tested in ba-net::svc; this is the service-level effect.)
    let target = find_target("ds-broadcast").unwrap();
    let cfg = cfg_for(target.name, Value::ONE, ScheduleSpec::default());
    let cfgs = vec![cfg.clone(), cfg];
    let svc = SvcConfig::new().with_admit_per_tick(1);
    let chaos = ChaosProfile::lossy(77, 300);
    let mux = run_target_multiplexed(target, &cfgs, &svc, &chaos).unwrap();
    let wire: Vec<_> = mux
        .runs
        .iter()
        .map(|r| match r {
            Ok(run) => wire_fields(&run.stats),
            Err(v) => wire_fields(&v.stats),
        })
        .collect();
    assert_ne!(
        wire[0], wire[1],
        "identical specs with distinct instance seeds must see distinct fates"
    );
}
