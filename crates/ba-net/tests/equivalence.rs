//! The tentpole acceptance tests: under a reliable wire the runtime is
//! byte-identical to the lock-step engine for every checkable target at
//! worker-thread counts 1 and 4; under chaos it degrades gracefully —
//! structured verdicts, never a panic, never an untrustworthy decision.

use ba_algos::checkable::{targets, CheckConfig};
use ba_crypto::{ProcessId, Value};
use ba_net::{
    check_equivalence, run_target, ChaosProfile, DegradationReason, LinkChaos, NetConfig,
    NetRunError,
};
use ba_sim::schedule::{FaultBehavior, ScheduleSpec};

fn cfg_for(target_name: &str, spec: ScheduleSpec) -> CheckConfig {
    let (n, t) = if target_name == "algorithm1" {
        (5, 2)
    } else {
        (4, 1)
    };
    CheckConfig::new(n, t, Value::ONE, 11, 1, spec)
}

fn splitting_spec() -> ScheduleSpec {
    ScheduleSpec {
        faults: vec![(
            ProcessId(0),
            FaultBehavior::OmitTo {
                targets: vec![ProcessId(2)],
            },
        )],
        link_drops: vec![],
    }
}

#[test]
fn every_target_is_equivalent_at_one_and_four_workers() {
    for target in targets() {
        for spec in [ScheduleSpec::default(), splitting_spec()] {
            let cfg = cfg_for(target.name, spec.clone());
            for threads in [1usize, 4] {
                check_equivalence(target, &cfg, threads).unwrap_or_else(|err| {
                    panic!("{} threads={threads} {spec:?}: {err}", target.name)
                });
            }
        }
    }
}

#[test]
fn equivalence_holds_with_byzantine_schedules() {
    // Equivocation and crashes exercise the faulty-sender accounting path.
    let specs = [
        ScheduleSpec {
            faults: vec![(
                ProcessId(0),
                FaultBehavior::Equivocate {
                    ones: vec![ProcessId(1)],
                },
            )],
            link_drops: vec![],
        },
        ScheduleSpec {
            faults: vec![(ProcessId(1), FaultBehavior::CrashAt { phase: 2 })],
            link_drops: vec![],
        },
    ];
    for target in targets() {
        for spec in &specs {
            let cfg = cfg_for(target.name, spec.clone());
            check_equivalence(target, &cfg, 4)
                .unwrap_or_else(|err| panic!("{} {spec:?}: {err}", target.name));
        }
    }
}

#[test]
fn sound_targets_survive_recoverable_noise() {
    // Jitter (no loss) and mild loss are masked by retransmission: runs
    // complete, nobody is suspected under jitter, and the agreement
    // verdict holds for every sound target.
    let net = NetConfig {
        threads: 2,
        ..NetConfig::default()
    };
    for target in targets().iter().filter(|t| t.sound) {
        let cfg = cfg_for(target.name, ScheduleSpec::default());
        for (label, chaos) in [
            ("jitter", ChaosProfile::jitter(21)),
            ("lossy", ChaosProfile::lossy(22, 200)),
        ] {
            let run = run_target(target, &cfg, &net, &chaos)
                .unwrap_or_else(|e| panic!("{} under {label}: {e}", target.name));
            assert!(
                !run.violated(),
                "{} violated agreement under {label}: {:?}",
                target.name,
                run.agreement
            );
            if label == "jitter" {
                assert!(run.suspected.is_empty(), "jitter loses nothing");
                assert_eq!(run.stats.frames_failed, 0);
            }
        }
    }
}

#[test]
fn unsound_target_is_still_caught_through_the_net_runtime() {
    let weak = ba_algos::checkable::find_target("ds-weak-relay-threshold").unwrap();
    let cfg = cfg_for(weak.name, splitting_spec());
    let run = run_target(weak, &cfg, &NetConfig::default(), &ChaosProfile::reliable()).unwrap();
    assert!(
        run.violated(),
        "the splitting schedule must break the weakened target over the net runtime too"
    );
}

#[test]
fn dead_link_within_budget_degrades_gracefully() {
    // No scheduled faults, budget t = 1: one permanently dead link makes
    // its sender suspected, the run completes, and the remaining correct
    // processors still agree.
    let target = ba_algos::checkable::find_target("ds-broadcast").unwrap();
    let cfg = cfg_for(target.name, ScheduleSpec::default());
    let chaos = ChaosProfile::reliable().with_link(ProcessId(1), ProcessId(3), LinkChaos::dead());
    let run = run_target(target, &cfg, &NetConfig::default(), &chaos).unwrap();
    assert_eq!(run.suspected, vec![ProcessId(1)]);
    assert!(!run.correct[1], "suspected sender is not held correct");
    assert!(!run.violated(), "{:?}", run.agreement);
    assert!(run.stats.frames_failed > 0);
    assert!(!run.stats.failed_links.is_empty());
}

#[test]
fn fault_budget_exceeded_aborts_with_structured_verdict() {
    // The splitting schedule already spends the whole budget (t = 1) on
    // the transmitter; killing a correct sender's link on top pushes the
    // observable fault set to 2 and the runtime must refuse to decide.
    let target = ba_algos::checkable::find_target("ds-broadcast").unwrap();
    let cfg = cfg_for(target.name, splitting_spec());
    let chaos = ChaosProfile::reliable().with_link(ProcessId(1), ProcessId(3), LinkChaos::dead());
    let err = run_target(target, &cfg, &NetConfig::default(), &chaos).unwrap_err();
    let NetRunError::Degraded(verdict) = err else {
        panic!("expected a degradation verdict, got {err}");
    };
    assert!(
        matches!(
            verdict.reason,
            DegradationReason::FaultBudgetExceeded {
                observed: 2,
                budget: 1
            }
        ),
        "{verdict}"
    );
    assert_eq!(verdict.suspected, vec![ProcessId(1)]);
    assert!(verdict
        .failed_links
        .iter()
        .all(|l| l.from == ProcessId(1) && l.to == ProcessId(3)));
    assert!(verdict.phase >= 1);
}

#[test]
fn chaos_runs_are_reproducible_at_any_worker_count() {
    let target = ba_algos::checkable::find_target("ds-relay").unwrap();
    let cfg = cfg_for(target.name, ScheduleSpec::default());
    let chaos = ChaosProfile::stress(33);
    let run = |threads: usize| {
        let net = NetConfig {
            threads,
            ..NetConfig::default()
        };
        match run_target(target, &cfg, &net, &chaos) {
            Ok(run) => (run.decisions, run.suspected, run.stats),
            Err(NetRunError::Degraded(v)) => (vec![], v.suspected, v.stats),
            Err(e) => panic!("{e}"),
        }
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one, four, "chaos outcome depends only on the seed");
}
