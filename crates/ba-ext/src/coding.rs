//! Systematic Reed–Solomon–style erasure coding over GF(256), in-tree.
//!
//! A payload is split into `k` *data chunks* — zero-copy
//! [`Bytes`] slices of the one payload allocation — and extended with
//! `n − k` *parity chunks* so that **any** `k` of the `n` coded chunks
//! reconstruct the payload exactly. Chunk `i` is the value of a degree
//! `< k` polynomial (per byte position) at the field point `i`: points
//! `0..k` carry the data itself (systematic — fault-free decoding is a
//! straight concatenation with no field arithmetic), points `k..n` carry
//! Lagrange-interpolated parity.
//!
//! The field is GF(2⁸) with the usual AES-adjacent reduction polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11D), log/exp tables built once. Addition
//! is XOR, so "any `k` chunks suffice" costs one table-multiply and one
//! XOR per byte per support chunk — and nothing at all on the systematic
//! fast path.

use ba_crypto::Bytes;
use std::sync::OnceLock;

/// Reduction polynomial for GF(2⁸).
const GF_POLY: u16 = 0x11D;

struct Tables {
    /// `exp[i] = g^i` for generator `g = 2`, doubled so products of logs
    /// (each `< 255`) index without a modulo.
    exp: [u8; 512],
    log: [u8; 256],
}

static TABLES: OnceLock<Tables> = OnceLock::new();

fn tables() -> &'static Tables {
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= GF_POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

fn gf_div(a: u8, b: u8) -> u8 {
    debug_assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[255 + t.log[a as usize] as usize - t.log[b as usize] as usize]
}

/// The Lagrange coefficient `∏_{u≠j} (e − xs[u]) / (xs[j] − xs[u])`
/// (subtraction is XOR): the weight of support point `xs[j]` when
/// evaluating the interpolating polynomial at `e`.
fn lagrange_coeff(e: u8, xs: &[u8], j: usize) -> u8 {
    let mut num = 1u8;
    let mut den = 1u8;
    for (u, &x) in xs.iter().enumerate() {
        if u == j {
            continue;
        }
        num = gf_mul(num, e ^ x);
        den = gf_mul(den, xs[j] ^ x);
    }
    gf_div(num, den)
}

/// Accumulates `coeff · src[b]` into `acc[b]` for every byte position,
/// through a per-coefficient 256-entry product table so the hot loop is a
/// lookup and an XOR. `src` shorter than `acc` is implicitly zero-padded
/// (the tail contributes nothing).
fn fma_bytes(acc: &mut [u8], coeff: u8, src: &[u8]) {
    if coeff == 0 {
        return;
    }
    let mut table = [0u8; 256];
    for (v, slot) in table.iter_mut().enumerate() {
        *slot = gf_mul(coeff, v as u8);
    }
    for (a, &s) in acc.iter_mut().zip(src) {
        *a ^= table[s as usize];
    }
}

/// A systematic `(n, k)` erasure coder: `k` data chunks, `n − k` parity
/// chunks, any `k` of the `n` reconstruct.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Coder {
    k: usize,
    n: usize,
}

impl Coder {
    /// Creates an `(n, k)` coder.
    ///
    /// # Panics
    /// When `k` is zero, `k > n`, or `n > 256` (chunk indices must be
    /// distinct GF(256) points).
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k >= 1, "at least one data chunk is required");
        assert!(k <= n, "cannot need more chunks ({k}) than exist ({n})");
        assert!(n <= 256, "chunk indices must be distinct GF(256) points");
        Coder { k, n }
    }

    /// Chunks needed to reconstruct.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total coded chunks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes per chunk for an `len`-byte payload (the last data chunk may
    /// be shorter on the wire; it is implicitly zero-padded for coding).
    pub fn chunk_size(&self, len: usize) -> usize {
        len.div_ceil(self.k).max(1)
    }

    /// Splits `payload` into `n` coded chunks. The first `k` are zero-copy
    /// slices of `payload`'s allocation; the parity chunks are fresh
    /// `chunk_size`-byte allocations.
    pub fn encode(&self, payload: &Bytes) -> Vec<Bytes> {
        let cs = self.chunk_size(payload.len());
        let mut chunks = Vec::with_capacity(self.n);
        for i in 0..self.k {
            let start = (i * cs).min(payload.len());
            let end = ((i + 1) * cs).min(payload.len());
            chunks.push(payload.slice(start..end));
        }
        let xs: Vec<u8> = (0..self.k as u16).map(|x| x as u8).collect();
        for p in self.k..self.n {
            let mut parity = vec![0u8; cs];
            for (j, chunk) in chunks.iter().enumerate().take(self.k) {
                let coeff = lagrange_coeff(p as u8, &xs, j);
                fma_bytes(&mut parity, coeff, chunk);
            }
            chunks.push(Bytes::from(parity));
        }
        chunks
    }

    /// Reconstructs the `len`-byte payload from any `k` of the coded
    /// chunks (`chunks[i]` holds the chunk at point `i`, `None` when
    /// missing). Returns `None` when fewer than `k` chunks are present.
    ///
    /// Chunks shorter than `chunk_size` are treated as zero-padded; the
    /// result is truncated to `len`. Present data chunks are copied
    /// through unchanged (the systematic fast path), so a fault-free
    /// reconstruction performs no field arithmetic at all.
    pub fn reconstruct(&self, chunks: &[Option<Bytes>], len: usize) -> Option<Vec<u8>> {
        assert_eq!(chunks.len(), self.n, "one slot per coded chunk expected");
        let cs = self.chunk_size(len);
        let present = chunks.iter().filter(|c| c.is_some()).count();
        if present < self.k {
            return None;
        }
        // Support set: the first k present chunks (deterministic, so every
        // node reconstructs identically from identical chunk sets).
        let support: Vec<usize> = (0..self.n)
            .filter(|&i| chunks[i].is_some())
            .take(self.k)
            .collect();
        let xs: Vec<u8> = support.iter().map(|&i| i as u8).collect();
        let mut payload = vec![0u8; cs * self.k];
        for i in 0..self.k {
            let out = &mut payload[i * cs..(i + 1) * cs];
            if let Some(chunk) = &chunks[i] {
                out[..chunk.len().min(cs)].copy_from_slice(&chunk[..chunk.len().min(cs)]);
                continue;
            }
            for (j, &s) in support.iter().enumerate() {
                let coeff = lagrange_coeff(i as u8, &xs, j);
                fma_bytes(
                    out,
                    coeff,
                    chunks[s].as_ref().expect("support chunk present"),
                );
            }
        }
        payload.truncate(len);
        Some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_crypto::rng::SimRng;

    fn payload(len: usize, seed: u64) -> Bytes {
        let mut rng = SimRng::new(seed);
        Bytes::from((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn gf_tables_are_consistent() {
        for a in 1..=255u8 {
            assert_eq!(gf_div(gf_mul(a, 7), 7), a);
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
        // 2·x^7 overflows to x^8, which reduces to 0x11D's low byte.
        assert_eq!(gf_mul(2, 0x80), 0x1D);
    }

    #[test]
    fn systematic_chunks_are_zero_copy() {
        let coder = Coder::new(4, 6);
        let p = payload(64, 1);
        let chunks = coder.encode(&p);
        assert_eq!(chunks.len(), 6);
        for chunk in &chunks[..4] {
            assert!(chunk.shares_allocation(&p));
        }
        assert!(!chunks[4].shares_allocation(&p));
        assert_eq!(
            chunks[..4]
                .iter()
                .flat_map(|c| c.iter())
                .copied()
                .collect::<Vec<u8>>(),
            p.to_vec()
        );
    }

    #[test]
    fn any_k_chunks_reconstruct() {
        let coder = Coder::new(3, 6);
        let p = payload(100, 2);
        let chunks = coder.encode(&p);
        // Every 3-subset of the 6 chunks reconstructs the exact payload.
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let mut have: Vec<Option<Bytes>> = vec![None; 6];
                    for i in [a, b, c] {
                        have[i] = Some(chunks[i].clone());
                    }
                    let out = coder.reconstruct(&have, 100).expect("3 chunks suffice");
                    assert_eq!(out, p.to_vec(), "subset {{{a},{b},{c}}}");
                }
            }
        }
    }

    #[test]
    fn below_k_chunks_fail() {
        let coder = Coder::new(3, 6);
        let p = payload(50, 3);
        let chunks = coder.encode(&p);
        let mut have: Vec<Option<Bytes>> = vec![None; 6];
        have[1] = Some(chunks[1].clone());
        have[5] = Some(chunks[5].clone());
        assert_eq!(coder.reconstruct(&have, 50), None);
    }

    #[test]
    fn uneven_and_tiny_payloads_roundtrip() {
        for (len, k, n) in [
            (1, 4, 9),
            (7, 3, 5),
            (97, 16, 25),
            (256, 1, 4),
            (13, 13, 16),
        ] {
            let coder = Coder::new(k, n);
            let p = payload(len, len as u64);
            let chunks = coder.encode(&p);
            // Parity-only support (hardest case: every data chunk missing
            // where possible).
            let mut have: Vec<Option<Bytes>> = vec![None; n];
            let parity = n - k;
            for i in (0..n).rev().take(k.min(parity) + k.saturating_sub(parity)) {
                have[i] = Some(chunks[i].clone());
            }
            let mut count = have.iter().filter(|c| c.is_some()).count();
            for i in 0..n {
                if count >= k {
                    break;
                }
                if have[i].is_none() {
                    have[i] = Some(chunks[i].clone());
                    count += 1;
                }
            }
            assert_eq!(
                coder.reconstruct(&have, len).expect("k chunks held"),
                p.to_vec(),
                "len {len} k {k} n {n}"
            );
        }
    }
}
