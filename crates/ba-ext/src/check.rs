//! Fault-schedule exploration for the extension protocol, mirroring the
//! `ba-algos` [`CheckTarget`](ba_algos::checkable::CheckTarget) contract:
//! a scenario runs to an outcome whose `failure` is `None` exactly when
//! every guaranteed property held.
//!
//! A scenario is a generic [`ScheduleSpec`] (applied to *every* stage —
//! a processor faulty for digest agreement is faulty for dissemination,
//! the availability vote and the fetch round) plus an extension-specific
//! adversary the generic vocabulary cannot express: **garbling**, where a
//! Byzantine relay corrupts the chunk bytes it forwards while leaving the
//! sender's signature attached, and corrupts the payload in any `Full`
//! fetch response it serves. Garbled chunks must die at the first correct
//! hop (the signature binds the bytes) and garbled fetch responses at the
//! requester's digest check, so garbling degrades to withholding — which
//! repair and fetch escalation then absorb.
//!
//! Checked properties, over correct processors only:
//!
//! * **No wrong payload** (safety): every decided payload is byte-for-byte
//!   the sender's payload. This holds even for a *faulty* sender here,
//!   because [`run_extension`](crate::run_extension) always signs the real
//!   payload — fault wrappers suppress or corrupt traffic, they cannot
//!   re-sign. (A sender signing inconsistent chunks is exercised
//!   separately in the crate tests; it forces aborts, never a wrong
//!   payload, because reconstruction is digest-checked.)
//! * **Outcome agreement** (strict): no two correct processors land on
//!   different [`ExtDecision`]s — not different payloads, not different
//!   variants, not different [`AbortReason`](crate::AbortReason)s. This is
//!   the agreement-on-abort guarantee the availability vote buys; any
//!   split outcome is a violation regardless of the sender's faultiness.
//! * **Totality** (liveness): when the sender is correct, every correct
//!   processor decides — the grid-repair argument: a chunk with a correct
//!   owner reaches processor `v` through one of `√n` column-disjoint
//!   relay pairs, and `t ≤ √n − 1` faults cannot cut all of them, so `v`
//!   holds at least `n − t ≥ k` chunks, and `n − t ≥ t + 1` available
//!   votes carry the collective decide.

use crate::net::{run_extension_net, ExtNetError, ExtNetRun};
use crate::{
    agree_on_payload, run_extension, ExtDecision, ExtError, ExtMsg, ExtOptions, ExtReport,
};
use ba_crypto::rng::SimRng;
use ba_crypto::{Bytes, ProcessId, Value};
use ba_net::{ChaosProfile, NetConfig};
use ba_sim::schedule::{FaultBehavior, ScheduleSpec};
use ba_sim::{Actor, Envelope, Outbox};

/// One adversarial scenario for the extension protocol.
#[derive(Clone, Debug, Default)]
pub struct ExtScenario {
    /// Generic fault schedule, applied to digest agreement and
    /// dissemination alike.
    pub spec: ScheduleSpec,
    /// Processors that garble every chunk they send during dissemination
    /// (extension-specific Byzantine behaviour; disjoint from
    /// `spec.faults`, honest during digest agreement).
    pub garble: Vec<ProcessId>,
    /// Short label for reports.
    pub label: String,
}

impl ExtScenario {
    /// Total Byzantine processors this scenario models.
    pub fn fault_count(&self) -> usize {
        self.spec.fault_count() + self.garble.len()
    }

    /// Whether processor 0 (the sender) is modeled faulty.
    pub fn sender_faulty(&self) -> bool {
        self.spec.is_faulty(ProcessId(0)) || self.garble.contains(&ProcessId(0))
    }

    /// Well-formedness against the run geometry.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self, n: usize, t: usize) -> Result<(), String> {
        if self.fault_count() > t {
            return Err(format!(
                "{} faults exceed the budget t = {t}",
                self.fault_count()
            ));
        }
        // The garblers occupy fault slots the spec doesn't know about, so
        // validate the spec against the residual budget.
        self.spec.validate(n, t - self.garble.len())?;
        for p in &self.garble {
            if p.index() >= n {
                return Err(format!("garbler {p} out of range for n = {n}"));
            }
            if self.spec.is_faulty(*p) {
                return Err(format!("{p} is both garbling and schedule-faulty"));
            }
        }
        Ok(())
    }
}

/// Wraps an honest dissemination actor and corrupts the first byte of
/// every chunk it sends, leaving the (now invalid) signature attached.
#[derive(Debug)]
struct Garbler {
    honest: Box<dyn Actor<ExtMsg>>,
    id: ProcessId,
}

impl Garbler {
    fn garble(msg: ExtMsg) -> ExtMsg {
        let corrupt = |mut chunk: crate::SignedChunk| {
            let mut data = chunk.data.to_vec();
            match data.first_mut() {
                Some(b) => *b ^= 0xFF,
                // An empty chunk has no bytes to flip; lie about the
                // index instead so the signature still fails.
                None => chunk.index ^= 1,
            }
            chunk.data = Bytes::from(data);
            chunk
        };
        match msg {
            ExtMsg::Chunk(c) => ExtMsg::Chunk(corrupt(c)),
            ExtMsg::Bundle(chunks) => ExtMsg::Bundle(chunks.into_iter().map(corrupt).collect()),
            ExtMsg::Full(payload) => {
                // Corrupt the served payload; the requester's digest check
                // must reject it.
                let mut data = payload.to_vec();
                match data.first_mut() {
                    Some(b) => *b ^= 0xFF,
                    None => data.push(0xFF),
                }
                ExtMsg::Full(Bytes::from(data))
            }
            passthrough @ (ExtMsg::Repair(_) | ExtMsg::Fetch) => passthrough,
        }
    }
}

impl Actor<ExtMsg> for Garbler {
    fn step(&mut self, phase: usize, inbox: &[Envelope<ExtMsg>], out: &mut Outbox<ExtMsg>) {
        let mut scratch = Outbox::new(self.id);
        self.honest.step(phase, inbox, &mut scratch);
        for env in scratch.into_staged() {
            out.send(env.to, Self::garble(env.payload));
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<ExtMsg>]) {
        self.honest.finalize(inbox);
    }

    fn decision(&self) -> Option<Value> {
        None
    }

    fn is_correct(&self) -> bool {
        false
    }
}

/// What one checked scenario produced.
#[derive(Debug)]
pub struct ExtCheckOutcome {
    /// The scenario's label.
    pub label: String,
    /// The run report (`None` when the scenario failed to compile).
    pub report: Option<ExtReport>,
    /// `Some(description)` when a guaranteed property was violated.
    pub failure: Option<String>,
}

/// Runs one scenario and judges the outcome.
pub fn run_scenario(payload: &Bytes, opts: &ExtOptions, scenario: &ExtScenario) -> ExtCheckOutcome {
    if let Err(msg) = scenario.validate(opts.n, opts.t) {
        return ExtCheckOutcome {
            label: scenario.label.clone(),
            report: None,
            failure: Some(format!("invalid scenario: {msg}")),
        };
    }
    let garble = scenario.garble.clone();
    let result = run_extension(payload, opts, &scenario.spec, move |mut actors| {
        for p in &garble {
            let honest = std::mem::replace(
                &mut actors[p.index()],
                Box::new(crate::NullActor) as Box<dyn Actor<ExtMsg>>,
            );
            actors[p.index()] = Box::new(Garbler { honest, id: *p });
        }
        actors
    });
    match result {
        Ok(report) => {
            let failure = judge(payload, &report, scenario);
            ExtCheckOutcome {
                label: scenario.label.clone(),
                report: Some(report),
                failure,
            }
        }
        Err(ExtError::Schedule(err)) => ExtCheckOutcome {
            label: scenario.label.clone(),
            report: None,
            failure: Some(format!("schedule did not compile: {err}")),
        },
        Err(err) => ExtCheckOutcome {
            label: scenario.label.clone(),
            report: None,
            failure: Some(err.to_string()),
        },
    }
}

/// Runs one scenario through the chaos runtime (see [`crate::net`]) and
/// judges a completed run with the same strict properties as
/// [`run_scenario`]: returns the run plus `Some(description)` when a
/// guaranteed property was violated. A structured degradation is the
/// loud, *non*-violating outcome and surfaces as the error.
///
/// # Errors
/// Invalid scenarios (as [`ExtNetError::BadOptions`]), schedule-compile
/// errors, or a [`DegradationVerdict`](ba_net::verdict::DegradationVerdict)
/// attributed to the failing stage.
pub fn run_scenario_net(
    payload: &Bytes,
    opts: &ExtOptions,
    scenario: &ExtScenario,
    net: &NetConfig,
    chaos: &ChaosProfile,
) -> Result<(ExtNetRun, Option<String>), ExtNetError> {
    if let Err(msg) = scenario.validate(opts.n, opts.t) {
        return Err(ExtNetError::BadOptions(format!("invalid scenario: {msg}")));
    }
    let garble = scenario.garble.clone();
    let run = run_extension_net(
        payload,
        opts,
        net,
        chaos,
        &scenario.spec,
        move |mut actors| {
            for p in &garble {
                let honest = std::mem::replace(
                    &mut actors[p.index()],
                    Box::new(crate::NullActor) as Box<dyn Actor<ExtMsg>>,
                );
                actors[p.index()] = Box::new(Garbler { honest, id: *p });
            }
            actors
        },
    )?;
    let failure = judge(payload, &run.report, scenario);
    Ok((run, failure))
}

/// Judges a report against the guaranteed properties. `None` = all held.
fn judge(payload: &Bytes, report: &ExtReport, scenario: &ExtScenario) -> Option<String> {
    // Strict outcome agreement first: any two correct nodes with differing
    // variants, payloads or abort reasons is a violation — even under a
    // Byzantine sender.
    if let Err(msg) = crate::net::outcome_agreement(report) {
        return Some(msg);
    }
    for (id, decision) in report.correct_decisions() {
        match decision.expect("outcome agreement rejects missing outcomes") {
            ExtDecision::Decide(bytes) => {
                // Safety: only the sender's actual payload is decidable
                // (the digest check in `outcome_agreement` implies this
                // modulo collisions; assert the bytes directly).
                if bytes != payload {
                    return Some(format!("correct {id} decided a WRONG payload"));
                }
            }
            ExtDecision::Abort(reason) => {
                // Totality: a correct sender leaves no excuse to abort.
                if !scenario.sender_faulty() {
                    return Some(format!(
                        "correct {id} aborted ({reason}) despite a correct sender"
                    ));
                }
            }
        }
    }
    None
}

/// A bounded scenario family for `(n, t)`: every single-fault behaviour
/// on structurally distinct grid positions, withholding/garbling at full
/// budget `t`, mixed-behaviour budget-`t` schedules, and `extra_random`
/// seeded random schedules. Scenario count is O(t + extra_random).
pub fn standard_scenarios(n: usize, t: usize, seed: u64, extra_random: usize) -> Vec<ExtScenario> {
    let m = (n as f64).sqrt().round() as usize;
    let mut out = Vec::new();
    if t == 0 {
        out.push(ExtScenario {
            label: "fault-free".into(),
            ..ExtScenario::default()
        });
        return out;
    }

    // Structurally distinct single positions: the sender, the sender's row
    // mate, the sender's column mate, and the far corner.
    let positions = [0usize, 1, m, n - 1];
    for &p in positions.iter().filter(|&&p| p < n) {
        let pid = ProcessId(p as u32);
        for (tag, behavior) in [
            ("silent", FaultBehavior::Silent),
            ("crash@3", FaultBehavior::CrashAt { phase: 3 }),
            (
                "omit-row",
                FaultBehavior::OmitTo {
                    targets: crate::Grid::new(n)
                        .map(|g| g.row_mates(p).collect())
                        .unwrap_or_default(),
                },
            ),
        ] {
            out.push(ExtScenario {
                spec: ScheduleSpec {
                    faults: vec![(pid, behavior.clone())],
                    link_drops: Vec::new(),
                },
                garble: Vec::new(),
                label: format!("{tag}:{p}"),
            });
        }
        out.push(ExtScenario {
            spec: ScheduleSpec::default(),
            garble: vec![pid],
            label: format!("garble:{p}"),
        });
    }

    // Full-budget withholding: the first t non-sender chunk owners go
    // silent — t chunks never enter the grid.
    out.push(ExtScenario {
        spec: ScheduleSpec {
            faults: (1..=t)
                .map(|p| (ProcessId(p as u32), FaultBehavior::Silent))
                .collect(),
            link_drops: Vec::new(),
        },
        garble: Vec::new(),
        label: format!("withhold-{t}-chunks"),
    });
    // Full-budget garbling: t relays corrupt everything they touch.
    out.push(ExtScenario {
        spec: ScheduleSpec::default(),
        garble: (1..=t).map(|p| ProcessId(p as u32)).collect(),
        label: format!("garble-{t}-relays"),
    });
    // A whole-row-minus-one attack: faults packed into one row to stress
    // the column-disjoint repair argument.
    if t >= 2 {
        out.push(ExtScenario {
            spec: ScheduleSpec {
                faults: (m..m + t)
                    .map(|p| (ProcessId(p as u32), FaultBehavior::Silent))
                    .collect(),
                link_drops: Vec::new(),
            },
            garble: Vec::new(),
            label: "silent-row-prefix".into(),
        });
    }

    // Seeded random budget-t schedules mixing behaviours.
    let mut rng = SimRng::new(seed ^ 0xC4EC);
    for round in 0..extra_random {
        let mut picked: Vec<usize> = Vec::new();
        while picked.len() < t {
            let p = (rng.next_u64() as usize) % n;
            if !picked.contains(&p) {
                picked.push(p);
            }
        }
        picked.sort_unstable();
        let mut faults = Vec::new();
        let mut garble = Vec::new();
        for &p in &picked {
            let pid = ProcessId(p as u32);
            match rng.next_u64() % 4 {
                0 => faults.push((pid, FaultBehavior::Silent)),
                1 => faults.push((
                    pid,
                    FaultBehavior::CrashAt {
                        phase: 1 + (rng.next_u64() as usize) % crate::DISSEMINATION_PHASES,
                    },
                )),
                2 => {
                    let target = ProcessId((rng.next_u64() % n as u64) as u32);
                    faults.push((
                        pid,
                        FaultBehavior::OmitTo {
                            targets: vec![target],
                        },
                    ));
                }
                _ => garble.push(pid),
            }
        }
        out.push(ExtScenario {
            spec: ScheduleSpec {
                faults,
                link_drops: Vec::new(),
            },
            garble,
            label: format!("random:{round}"),
        });
    }
    out
}

/// Result of [`sweep`]: every scenario outcome, failures surfaced.
#[derive(Debug)]
pub struct SweepReport {
    /// One outcome per scenario, in order.
    pub outcomes: Vec<ExtCheckOutcome>,
}

impl SweepReport {
    /// Outcomes whose guaranteed properties were violated.
    pub fn failures(&self) -> impl Iterator<Item = &ExtCheckOutcome> {
        self.outcomes.iter().filter(|o| o.failure.is_some())
    }

    /// Number of scenarios swept.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no scenarios ran.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

/// Runs the [`standard_scenarios`] family against `payload` and `opts`.
pub fn sweep(payload: &Bytes, opts: &ExtOptions, extra_random: usize) -> SweepReport {
    let outcomes = standard_scenarios(opts.n, opts.t, opts.seed, extra_random)
        .iter()
        .map(|scenario| run_scenario(payload, opts, scenario))
        .collect();
    SweepReport { outcomes }
}

/// Convenience: the fault-free baseline must decide everywhere with the
/// gated overhead; returns the report for inspection.
///
/// # Errors
/// Propagates [`agree_on_payload`] errors.
pub fn baseline(payload: &Bytes, opts: &ExtOptions) -> Result<ExtReport, ExtError> {
    agree_on_payload(payload, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize, seed: u64) -> Bytes {
        let mut rng = SimRng::new(seed);
        Bytes::from((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn scenario_validation_enforces_budget_and_disjointness() {
        let over = ExtScenario {
            spec: ScheduleSpec {
                faults: vec![
                    (ProcessId(1), FaultBehavior::Silent),
                    (ProcessId(2), FaultBehavior::Silent),
                ],
                link_drops: Vec::new(),
            },
            garble: vec![ProcessId(3)],
            label: "over".into(),
        };
        assert!(over.validate(16, 2).is_err(), "3 faults > t = 2");
        assert!(over.validate(16, 3).is_ok());
        let overlap = ExtScenario {
            spec: ScheduleSpec {
                faults: vec![(ProcessId(1), FaultBehavior::Silent)],
                link_drops: Vec::new(),
            },
            garble: vec![ProcessId(1)],
            label: "dup".into(),
        };
        assert!(overlap.validate(16, 2).is_err(), "overlapping fault roles");
    }

    #[test]
    fn garbled_chunks_never_verify() {
        use ba_crypto::{KeyRegistry, SchemeKind};
        let reg = KeyRegistry::new(4, 3, SchemeKind::Fast);
        let chunk =
            crate::SignedChunk::sign(&reg.signer(ProcessId(0)), 1, 9, Bytes::from(vec![5; 9]));
        let ExtMsg::Chunk(garbled) = Garbler::garble(ExtMsg::Chunk(chunk.clone())) else {
            panic!("chunk stays a chunk");
        };
        assert_ne!(garbled.data, chunk.data);
        assert!(!garbled.verify(&reg.verifier(), ProcessId(0)));
        // Empty chunks are garbled through the index instead.
        let empty =
            crate::SignedChunk::sign(&reg.signer(ProcessId(0)), 1, 0, Bytes::from(Vec::new()));
        let ExtMsg::Chunk(garbled) = Garbler::garble(ExtMsg::Chunk(empty)) else {
            panic!("chunk stays a chunk");
        };
        assert!(!garbled.verify(&reg.verifier(), ProcessId(0)));
    }

    #[test]
    fn standard_family_covers_garbling_and_withholding() {
        let scenarios = standard_scenarios(16, 2, 11, 3);
        assert!(scenarios.iter().any(|s| !s.garble.is_empty()));
        assert!(scenarios
            .iter()
            .any(|s| s.spec.fault_count() == 2 && s.garble.is_empty()));
        assert!(
            scenarios
                .iter()
                .filter(|s| s.label.starts_with("random"))
                .count()
                == 3
        );
        for s in &scenarios {
            s.validate(16, 2)
                .unwrap_or_else(|e| panic!("{}: {e}", s.label));
        }
    }

    #[test]
    fn sweep_finds_no_violations_at_full_budget() {
        let p = payload(4_096, 21);
        let opts = ExtOptions {
            t: 3,
            ..ExtOptions::default()
        };
        let report = sweep(&p, &opts, 4);
        let failures: Vec<&ExtCheckOutcome> = report.failures().collect();
        assert!(
            failures.is_empty(),
            "violations: {:?}",
            failures
                .iter()
                .map(|o| (&o.label, &o.failure))
                .collect::<Vec<_>>()
        );
        assert!(report.len() > 15, "family too small: {}", report.len());
    }

    #[test]
    fn faulty_sender_forces_aborts_not_wrong_payloads() {
        let p = payload(2_048, 5);
        let scenario = ExtScenario {
            spec: ScheduleSpec {
                faults: vec![(ProcessId(0), FaultBehavior::Silent)],
                link_drops: Vec::new(),
            },
            garble: Vec::new(),
            label: "silent-sender".into(),
        };
        let outcome = run_scenario(&p, &ExtOptions::default(), &scenario);
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        let report = outcome.report.expect("ran");
        for (id, decision) in report.correct_decisions() {
            assert!(
                matches!(decision, Some(ExtDecision::Abort(_))),
                "{id} should abort with a silent sender: {decision:?}"
            );
        }
    }
}
