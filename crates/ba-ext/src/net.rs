//! The extension protocol over the `ba-net` chaos runtime.
//!
//! [`run_extension`](crate::run_extension) realizes the synchronous model
//! directly: every message sent in phase `k` arrives at phase `k + 1`.
//! This module earns that abstraction on an unreliable wire instead: all
//! four stages — digest-word agreement, grid dissemination, the
//! availability vote and the payload fetch — are driven through
//! [`NetRuntime`], riding its bounded retransmission, backoff, dedup and
//! phase watchdogs under a seeded [`ChaosProfile`] (loss, duplication,
//! delay, reordering). Two contracts:
//!
//! * **Reliable wire ⇒ byte identity.** Under [`ChaosProfile::reliable`]
//!   every stage's decisions and [`Metrics`] are byte-identical to the
//!   lock-step run at any worker count (`tests/net.rs` proves it at 1 and
//!   4 workers).
//! * **Chaos ⇒ decide right or degrade loudly.** When a stage's observable
//!   fault set exceeds the budget, the runtime aborts that stage with a
//!   structured [`DegradationVerdict`] and the run surfaces it as
//!   [`ExtNetError::Degraded`] with the failing [`ExtStage`] attached —
//!   the protocol never decides a wrong payload and never splits the
//!   outcome between correct nodes.
//!
//! Each stage draws chaos fates from its own reseeded profile
//! ([`instance_seed`] over a stable per-stage index), so a single profile
//! seed yields independent wire weather per stage, and any stage's run is
//! individually reproducible.
//!
//! The availability vote's `n` one-word instances all share one cluster
//! identity (crate-internal `vote_seed`), which is exactly the service
//! layer's soundness invariant — [`multiplex_votes`] pipelines them over
//! one wire through `ba-svc` with a fleet-shared verifier cache and
//! returns the same per-node vote views as the serial path.

use crate::{
    apply_spec_faults, assemble_digest_views, count_repair_requests, count_repair_response_bytes,
    vote_cfg, vote_inputs, word_seed, ExtDecision, ExtMsg, ExtOptions, ExtReport, ExtSetup,
    DISSEMINATION_PHASES, FETCH_PHASES,
};
use ba_algos::checkable::{CheckConfig, CheckTarget};
use ba_algos::common::Board;
use ba_crypto::sha256::Sha256;
use ba_crypto::{Bytes, ProcessId, Value};
use ba_net::harness::NetRunError;
use ba_net::svc::instance_seed;
use ba_net::verdict::{DegradationVerdict, NetStats};
use ba_net::{run_target_multiplexed, ChaosProfile, NetConfig, NetOutcome, NetRuntime, SvcConfig};
use ba_sim::schedule::{ScheduleError, ScheduleSpec};
use ba_sim::{Actor, Metrics};

/// Which stage of the extension protocol a wire event belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExtStage {
    /// Digest-word inner-BA run `w` (0..4).
    DigestWord(usize),
    /// The chunk-dissemination grid exchange.
    Dissemination,
    /// Availability-vote inner-BA instance `v` (0..n).
    Vote(usize),
    /// The post-vote payload-fetch round.
    Fetch,
}

impl ExtStage {
    /// A stable per-stage index (words, then dissemination, then the `n`
    /// votes, then fetch) feeding [`instance_seed`], so every stage draws
    /// independent chaos fates from one profile seed.
    fn chaos_index(self, n: usize) -> u64 {
        match self {
            ExtStage::DigestWord(w) => w as u64,
            ExtStage::Dissemination => 4,
            ExtStage::Vote(v) => 5 + v as u64,
            ExtStage::Fetch => 5 + n as u64,
        }
    }
}

impl std::fmt::Display for ExtStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtStage::DigestWord(w) => write!(f, "digest word {w}"),
            ExtStage::Dissemination => write!(f, "dissemination"),
            ExtStage::Vote(v) => write!(f, "vote instance {v}"),
            ExtStage::Fetch => write!(f, "payload fetch"),
        }
    }
}

/// Errors from [`run_extension_net`].
#[derive(Debug)]
pub enum ExtNetError {
    /// The options or schedule failed validation.
    BadOptions(String),
    /// The schedule could not be compiled onto some stage's actors.
    Schedule(ScheduleError),
    /// A stage's observable fault set exceeded the budget: the runtime
    /// aborted with a structured verdict instead of risking a wrong or
    /// split outcome.
    Degraded {
        /// The stage that degraded.
        stage: ExtStage,
        /// The runtime's structured abort.
        verdict: Box<DegradationVerdict>,
    },
}

impl std::fmt::Display for ExtNetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtNetError::BadOptions(msg) => write!(f, "bad options: {msg}"),
            ExtNetError::Schedule(err) => write!(f, "schedule error: {err}"),
            ExtNetError::Degraded { stage, verdict } => {
                write!(f, "degraded during {stage}: {verdict}")
            }
        }
    }
}

impl std::error::Error for ExtNetError {}

/// Per-stage physical wire accounting of a net-driven run.
#[derive(Clone, Debug)]
pub struct StageWire {
    /// Which stage this row covers.
    pub stage: ExtStage,
    /// Physical wire statistics (attempts, retransmissions, dedup, acks).
    pub stats: NetStats,
    /// Senders this stage suspected from permanently failed links.
    pub suspected: Vec<ProcessId>,
}

/// One completed net-driven extension run.
#[derive(Debug)]
pub struct ExtNetRun {
    /// The protocol report — byte-identical to the lock-step
    /// [`run_extension`](crate::run_extension) report under a reliable
    /// wire.
    pub report: ExtReport,
    /// Physical wire statistics per stage, in execution order.
    pub wire: Vec<StageWire>,
}

impl ExtNetRun {
    /// Union of all stages' suspected senders, in id order.
    pub fn suspected(&self) -> Vec<ProcessId> {
        let mut all: Vec<ProcessId> = self
            .wire
            .iter()
            .flat_map(|w| w.suspected.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Total physical transmission attempts across all stages.
    pub fn physical_transmissions(&self) -> u64 {
        self.wire
            .iter()
            .map(|w| w.stats.physical_transmissions)
            .sum()
    }
}

/// Drives the full extension protocol through the message-passing runtime
/// under `chaos`, with the fault schedule compiled onto every stage and
/// the `rewrite` hook splicing extension-specific adversaries into the
/// dissemination and fetch stages, exactly as in
/// [`run_extension`](crate::run_extension).
///
/// `net.threads` sets the worker count; each stage's fault budget is
/// forced to the schedule's own `t` (`opts.t`, or `t.max(1)` for the
/// inner-BA stages, matching the lock-step configs).
///
/// # Errors
/// [`ExtNetError::BadOptions`] / [`ExtNetError::Schedule`] mirror the
/// lock-step errors; [`ExtNetError::Degraded`] carries the failing stage
/// and the runtime's structured verdict.
pub fn run_extension_net(
    payload: &Bytes,
    opts: &ExtOptions,
    net: &NetConfig,
    chaos: &ChaosProfile,
    spec: &ScheduleSpec,
    rewrite: impl Fn(Vec<Box<dyn Actor<ExtMsg>>>) -> Vec<Box<dyn Actor<ExtMsg>>>,
) -> Result<ExtNetRun, ExtNetError> {
    opts.validate().map_err(ExtNetError::BadOptions)?;
    spec.validate(opts.n, opts.t)
        .map_err(ExtNetError::BadOptions)?;
    let digest = Sha256::digest(payload);
    let words: Vec<u64> = digest
        .chunks_exact(8)
        .map(|w| u64::from_be_bytes(w.try_into().expect("8-byte digest word")))
        .collect();
    let mut wire: Vec<StageWire> = Vec::new();

    let stage_chaos = |stage: ExtStage| {
        chaos
            .clone()
            .reseeded(instance_seed(chaos.seed, stage.chaos_index(opts.n)))
    };

    // Inner-BA stages (digest words and votes) through the runtime.
    let run_inner = |target: &CheckTarget,
                     cfg: &CheckConfig,
                     stage: ExtStage,
                     wire: &mut Vec<StageWire>|
     -> Result<NetOutcome, ExtNetError> {
        let setup = target.build(cfg).map_err(ExtNetError::Schedule)?;
        let netcfg = NetConfig {
            threads: net.threads,
            fault_budget: cfg.t,
            ..net.clone()
        };
        let outcome = NetRuntime::new(setup.actors, netcfg)
            .with_registry(&setup.registry)
            .with_link_drops(cfg.spec.link_drops.iter().copied())
            .with_chaos(stage_chaos(stage))
            .run(setup.phases)
            .map_err(|verdict| ExtNetError::Degraded { stage, verdict })?;
        wire.push(StageWire {
            stage,
            stats: outcome.stats.clone(),
            suspected: outcome.suspected.clone(),
        });
        Ok(outcome)
    };

    // Stage 1 — digest agreement.
    let target = opts.inner_target();
    let mut inner_metrics = Metrics::default();
    let mut word_views: Vec<Vec<Option<u64>>> = Vec::with_capacity(words.len());
    for (w, &word) in words.iter().enumerate() {
        let cfg = CheckConfig::new(
            opts.n,
            opts.t.max(1),
            Value(word),
            word_seed(opts.seed, w),
            net.threads,
            spec.clone(),
        );
        let outcome = run_inner(target, &cfg, ExtStage::DigestWord(w), &mut wire)?;
        inner_metrics.merge(&outcome.metrics);
        word_views.push(outcome.decisions.iter().map(|d| d.map(|v| v.0)).collect());
    }
    let digest_views = assemble_digest_views(&word_views, opts.n);

    // Grid stages (dissemination and fetch) through the runtime.
    let setup = ExtSetup::new(opts);
    let run_grid = |actors: Vec<Box<dyn Actor<ExtMsg>>>,
                    phases: usize,
                    stage: ExtStage,
                    wire: &mut Vec<StageWire>|
     -> Result<NetOutcome, ExtNetError> {
        let netcfg = NetConfig {
            threads: net.threads,
            fault_budget: opts.t,
            ..net.clone()
        };
        let outcome = NetRuntime::new(actors, netcfg)
            .with_registry(&setup.registry)
            .with_link_drops(spec.link_drops.iter().copied())
            .with_chaos(stage_chaos(stage))
            .run(phases)
            .map_err(|verdict| ExtNetError::Degraded { stage, verdict })?;
        wire.push(StageWire {
            stage,
            stats: outcome.stats.clone(),
            suspected: outcome.suspected.clone(),
        });
        Ok(outcome)
    };

    // Stage 2 — dissemination into provisional decisions.
    let outgoing = setup.sign_chunks(payload);
    let provisional_board = Board::new(opts.n);
    let mut actors =
        setup.dissemination_actors(opts, payload, &digest_views, &outgoing, &provisional_board);
    apply_spec_faults(&mut actors, spec).map_err(ExtNetError::Schedule)?;
    let actors = rewrite(actors);
    let dissemination_outcome = run_grid(
        actors,
        DISSEMINATION_PHASES,
        ExtStage::Dissemination,
        &mut wire,
    )?;
    let provisional = provisional_board.snapshot();

    // Stage 3 — availability vote.
    let votes = vote_inputs(&provisional);
    let vote_target = opts.vote_target();
    let mut vote_metrics = Metrics::default();
    let mut vote_views: Vec<Vec<Option<Value>>> = Vec::with_capacity(opts.n);
    for (v, &vote) in votes.iter().enumerate() {
        let cfg = vote_cfg(opts, spec, v, vote);
        let outcome = run_inner(vote_target, &cfg, ExtStage::Vote(v), &mut wire)?;
        vote_metrics.merge(&outcome.metrics);
        vote_views.push(outcome.decisions);
    }

    // Stage 4 — payload fetch and final decisions.
    let board = Board::new(opts.n);
    let mut actors = setup.fetch_actors(opts, &digest_views, &provisional, &vote_views, &board);
    apply_spec_faults(&mut actors, spec).map_err(ExtNetError::Schedule)?;
    let actors = rewrite(actors);
    let fetch_outcome = run_grid(actors, FETCH_PHASES, ExtStage::Fetch, &mut wire)?;

    let correct = fetch_outcome.correct;
    let availability: Vec<ProcessId> = correct
        .iter()
        .position(|&c| c)
        .map(|i| {
            (0..opts.n)
                .filter(|&v| vote_views[v][i] == Some(Value::ONE))
                .map(|v| ProcessId(v as u32))
                .collect()
        })
        .unwrap_or_default();

    let report = ExtReport {
        payload_len: payload.len(),
        digest,
        decisions: board.snapshot(),
        correct,
        availability,
        repair_requests: count_repair_requests(
            &dissemination_outcome.metrics,
            &fetch_outcome.metrics,
        ),
        repair_response_bytes: count_repair_response_bytes(
            &dissemination_outcome.metrics,
            &fetch_outcome.metrics,
        ),
        inner_metrics,
        dissemination: dissemination_outcome.metrics,
        vote: vote_metrics,
        fetch: fetch_outcome.metrics,
    };
    Ok(ExtNetRun { report, wire })
}

/// Checks that no two correct nodes in `report` disagree on the outcome —
/// same variant, same payload bytes, same abort reason — and that no
/// decided payload mismatches the agreed digest. This is the invariant the
/// chaos soak and the `ext` check family gate on.
///
/// # Errors
/// A human-readable description of the first disagreement found.
pub fn outcome_agreement(report: &ExtReport) -> Result<(), String> {
    let mut agreed: Option<(ProcessId, &ExtDecision)> = None;
    for (id, decision) in report.correct_decisions() {
        let Some(decision) = decision else {
            return Err(format!("correct {id} finalized no outcome"));
        };
        if let ExtDecision::Decide(bytes) = decision {
            if Sha256::digest(bytes) != report.digest {
                return Err(format!("correct {id} decided a wrong payload"));
            }
        }
        match &agreed {
            None => agreed = Some((id, decision)),
            Some((first, other)) if *other != decision => {
                return Err(format!(
                    "correct {first} and {id} disagree on the outcome: {} vs {}",
                    describe(other),
                    describe(decision)
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

fn describe(decision: &ExtDecision) -> String {
    match decision {
        ExtDecision::Decide(payload) => format!("Decide({} bytes)", payload.len()),
        ExtDecision::Abort(reason) => format!("Abort({reason})"),
    }
}

/// Runs the `n` availability-vote instances through the multiplexing
/// service layer (`ba-svc`): one wire, pipelined phases, per-link batched
/// flushes, one fleet-shared verifier cache. The instances share one
/// cluster identity by construction (crate-internal `vote_seed`), which
/// is exactly the service's cache-sharing soundness invariant; instance
/// `v` differs only by transmitter and vote value.
///
/// `votes[v]` is node `v`'s availability vote, as
/// [`vote_inputs`](crate::vote_inputs) derives it from a provisional
/// board snapshot. Returns `vote_views[instance][node]` — the same shape
/// the serial paths produce, with decisions byte-identical to standalone
/// runs under per-instance reseeded chaos.
///
/// # Errors
/// [`ExtNetError::Schedule`] when the schedule does not compile;
/// [`ExtNetError::Degraded`] with the failing [`ExtStage::Vote`] when an
/// instance degrades.
pub fn multiplex_votes(
    opts: &ExtOptions,
    spec: &ScheduleSpec,
    votes: &[Value],
    svc: &SvcConfig,
    chaos: &ChaosProfile,
) -> Result<Vec<Vec<Option<Value>>>, ExtNetError> {
    opts.validate().map_err(ExtNetError::BadOptions)?;
    let cfgs: Vec<CheckConfig> = votes
        .iter()
        .enumerate()
        .map(|(v, &vote)| vote_cfg(opts, spec, v, vote))
        .collect();
    let run =
        run_target_multiplexed(opts.vote_target(), &cfgs, svc, chaos).map_err(|err| match err {
            NetRunError::Schedule(e) => ExtNetError::Schedule(e),
            NetRunError::Degraded(verdict) => ExtNetError::Degraded {
                stage: ExtStage::Vote(0),
                verdict,
            },
        })?;
    let mut views = Vec::with_capacity(run.runs.len());
    for (v, result) in run.runs.into_iter().enumerate() {
        match result {
            Ok(net_run) => views.push(net_run.decisions),
            Err(verdict) => {
                return Err(ExtNetError::Degraded {
                    stage: ExtStage::Vote(v),
                    verdict,
                })
            }
        }
    }
    Ok(views)
}
