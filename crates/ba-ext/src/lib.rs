//! Extension-protocol layer: Byzantine Agreement on arbitrary ℓ-byte
//! payloads.
//!
//! The paper's algorithms (and every other target in this workspace) agree
//! on single values; real traffic agrees on blocks. Following the
//! digest-then-disseminate construction from the extension-protocol
//! literature (Chen, *Fundamental Limits of Byzantine Agreement*), this
//! crate splits the problem:
//!
//! 1. **Digest agreement** — the sender hashes the payload
//!    (SHA-256, 32 bytes) and the digest's four 64-bit words are agreed
//!    through an existing *multi-valued* checkable target
//!    ([`ba_algos::checkable`], Dolev–Strong by default) as pluggable
//!    inner-BA. Everything downstream can now *verify* the payload, so
//!    dissemination needs no further agreement rounds.
//! 2. **Coded dissemination** — the payload is erasure-coded
//!    ([`coding::Coder`], systematic RS-lite over GF(256)) into `n`
//!    sender-signed chunks, `k = n − 2t` of which reconstruct. The chunks
//!    flow over the Algorithm-4 grid pattern (√n × √n): disperse one chunk
//!    per node, broadcast along rows, bundle rows down columns, then a
//!    demand-driven repair round along rows. Fault-free, the column-bundle
//!    phase dominates at `ℓ·n²/k ≤ 2ℓn` bytes — within a constant factor
//!    of the `ℓn` lower bound — and the repair phases are silent.
//! 3. **Agreement on the outcome itself** — reconstruction alone leaves
//!    `Decide`/`Abort` unagreed: a withholding sender can hand `k` chunks
//!    to some correct nodes and `k − 1` to others. So after the grid
//!    exchange every node casts an *availability vote*: `n` parallel
//!    one-word instances of the inner-BA, instance `v` transmitted by node
//!    `v`, carrying 1 iff `v` provisionally reconstructed a digest-matching
//!    payload. Inner agreement makes every correct node derive the same
//!    availability set; the collective outcome is `Decide` iff at least
//!    `t + 1` nodes voted available (any `t + 1` voters include a correct
//!    one, which really holds the payload). Nodes that lack the payload
//!    then fetch it from voters — first a single deterministically-ranked
//!    voter, escalating to `t + 1` distinct voters, so at least one
//!    responder is a correct holder — and verify it against the agreed
//!    digest. Every correct node therefore lands on the same
//!    [`ExtDecision`]: all `Decide(payload)`, or all `Abort` with the
//!    identical structured [`AbortReason`]. A Byzantine sender can force a
//!    collective abort, never a wrong payload and never a split outcome;
//!    Byzantine relays (up to `t ≤ √n − 1`, withholding or garbling
//!    chunks) can force nothing at all.
//!
//! The fault-schedule surface mirroring `ba-check`'s explorer lives in
//! [`check`]; the chaos-runtime driver (dissemination and votes over
//! `ba-net` with structured degradation verdicts) lives in [`net`];
//! wire-volume accounting rides the engine's
//! [`Metrics`] (`bytes_by_correct` / `payload_bytes_by_correct`), so the
//! bits-exchanged figures are schedule-independent and byte-identical at
//! any worker count like every other counter.

pub mod check;
pub mod coding;
pub mod net;

use ba_algos::checkable::{find_target, CheckConfig, CheckTarget};
use ba_algos::common::Board;
use ba_crypto::sha256::{Sha256, DIGEST_LEN};
use ba_crypto::wire::Encoder;
use ba_crypto::{Bytes, KeyRegistry, ProcessId, SchemeKind, Signature, Signer, Value, Verifier};
use ba_sim::schedule::{ScheduleError, ScheduleSpec};
use ba_sim::{Actor, Envelope, Metrics, Outbox, Payload, Simulation, WorkerPool};
use coding::Coder;
use std::sync::Arc;

/// Signing domain for extension-layer chunks (disjoint from
/// [`ba_algos::common::domains`]).
const DOMAIN_EXT_CHUNK: u32 = 6;

/// Dissemination phases: disperse, row broadcast, column bundles, repair
/// requests, designated repair responses, escalation re-requests, full-row
/// escalation responses (finalize consumes the last responses). Fault-free
/// the four repair phases are silent.
pub const DISSEMINATION_PHASES: usize = 7;

/// Payload-fetch phases after the availability vote: request to the
/// designated available voter, full-payload response, escalation request
/// to the next `t` voters, escalation responses. Silent whenever every
/// correct node already reconstructed (in particular fault-free).
pub const FETCH_PHASES: usize = 4;

/// The √n × √n grid underneath the dissemination pattern (the Algorithm-4
/// exchange geometry: processor `i` sits at row `i / m`, column `i % m`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Grid {
    pub(crate) m: usize,
}

impl Grid {
    pub(crate) fn new(n: usize) -> Option<Grid> {
        let m = (n as f64).sqrt().round() as usize;
        (m >= 2 && m * m == n).then_some(Grid { m })
    }

    fn row(&self, id: usize) -> usize {
        id / self.m
    }

    /// Ids in `id`'s row, excluding `id`.
    pub(crate) fn row_mates(&self, id: usize) -> impl Iterator<Item = ProcessId> {
        let start = self.row(id) * self.m;
        (start..start + self.m)
            .filter(move |&i| i != id)
            .map(|i| ProcessId(i as u32))
    }

    /// Ids in `id`'s column, excluding `id`.
    fn col_mates(&self, id: usize) -> impl Iterator<Item = ProcessId> {
        let m = self.m;
        let col = id % m;
        (0..m)
            .map(move |r| r * m + col)
            .filter(move |&i| i != id)
            .map(|i| ProcessId(i as u32))
    }

    /// The chunk indices owned by `id`'s row (chunk `i` is dispersed to
    /// node `i`, so a row owns a contiguous index range).
    fn row_indices(&self, id: usize) -> std::ops::Range<usize> {
        let start = self.row(id) * self.m;
        start..start + self.m
    }
}

/// One erasure-coded chunk, signed by the sender.
///
/// The signature binds the chunk index, the payload length and the chunk
/// bytes (through their digest), so relays can authenticate chunks without
/// any further agreement: a garbled or re-indexed chunk fails verification
/// and is dropped at the first correct hop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedChunk {
    /// Position in the coded-chunk vector (also the id of the node the
    /// chunk was dispersed to).
    pub index: u16,
    /// Total payload length in bytes, as claimed by the sender.
    pub payload_len: u64,
    /// The chunk bytes — a zero-copy slice of the sender's payload
    /// allocation for systematic chunks.
    pub data: Bytes,
    /// The sender's signature over `(index, payload_len, H(data))`.
    pub sig: Signature,
}

impl SignedChunk {
    fn content(index: u16, payload_len: u64, data: &[u8]) -> Bytes {
        let mut enc = Encoder::with_capacity(4 + 4 + 8 + DIGEST_LEN);
        enc.u32(DOMAIN_EXT_CHUNK)
            .u32(u32::from(index))
            .u64(payload_len)
            .raw(&Sha256::digest(data));
        enc.finish()
    }

    /// Signs `data` as chunk `index` of a `payload_len`-byte payload.
    pub fn sign(signer: &Signer, index: u16, payload_len: u64, data: Bytes) -> SignedChunk {
        let sig = signer.sign(&Self::content(index, payload_len, &data));
        SignedChunk {
            index,
            payload_len,
            data,
            sig,
        }
    }

    /// Whether this chunk carries a valid signature by `sender`.
    pub fn verify(&self, verifier: &Verifier, sender: ProcessId) -> bool {
        self.sig.signer() == sender
            && verifier.verify(
                &self.sig,
                &Self::content(self.index, self.payload_len, &self.data),
            )
    }

    /// Encoded wire size: index + payload length + data length prefix +
    /// data + signature.
    pub fn encoded_len(&self) -> usize {
        4 + 8 + 4 + self.data.len() + self.sig.encoded_len()
    }
}

/// A dissemination or payload-fetch message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExtMsg {
    /// A single chunk (disperse and row-broadcast phases).
    Chunk(SignedChunk),
    /// Several chunks at once (column bundles and repair responses).
    Bundle(Vec<SignedChunk>),
    /// Chunk indices the requester is missing (repair round).
    Repair(Vec<u16>),
    /// Full-payload request to an available voter (fetch round).
    Fetch,
    /// Full-payload response. Unsigned: the requester verifies the bytes
    /// against the agreed digest, which no signature could strengthen.
    Full(Bytes),
}

impl Payload for ExtMsg {
    fn signature_count(&self) -> usize {
        match self {
            ExtMsg::Chunk(_) => 1,
            ExtMsg::Bundle(chunks) => chunks.len(),
            ExtMsg::Repair(_) | ExtMsg::Fetch | ExtMsg::Full(_) => 0,
        }
    }

    fn weight_bytes(&self) -> usize {
        // One discriminant byte, then the body.
        1 + match self {
            ExtMsg::Chunk(c) => c.encoded_len(),
            ExtMsg::Bundle(chunks) => {
                4 + chunks.iter().map(SignedChunk::encoded_len).sum::<usize>()
            }
            ExtMsg::Repair(missing) => 4 + 2 * missing.len(),
            ExtMsg::Fetch => 0,
            ExtMsg::Full(payload) => 4 + payload.len(),
        }
    }

    fn payload_bytes(&self) -> usize {
        match self {
            ExtMsg::Chunk(c) => c.data.len(),
            ExtMsg::Bundle(chunks) => chunks.iter().map(|c| c.data.len()).sum(),
            ExtMsg::Repair(_) | ExtMsg::Fetch => 0,
            ExtMsg::Full(payload) => payload.len(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            ExtMsg::Chunk(_) => "ext-chunk",
            ExtMsg::Bundle(_) => "ext-bundle",
            ExtMsg::Repair(_) => "ext-repair",
            ExtMsg::Fetch => "ext-fetch",
            ExtMsg::Full(_) => "ext-full",
        }
    }
}

/// Why a node could not decide a payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AbortReason {
    /// The node's inner-BA runs did not yield a digest.
    MissingDigest,
    /// Fewer than `needed` authenticated chunks arrived.
    InsufficientChunks {
        /// Verified chunks held at finalize.
        held: usize,
        /// Chunks required to reconstruct (`k`).
        needed: usize,
    },
    /// Reconstruction succeeded but hashed to something other than the
    /// agreed digest (a Byzantine sender signed inconsistent chunks).
    DigestMismatch,
    /// The availability vote fell short: fewer than `needed` nodes voted
    /// that they hold the digest-matching payload. This is the *agreed*
    /// abort — every correct node derives the same vote tally, so every
    /// correct node carries this identical reason. Attributed to the
    /// sender: only a faulty sender (or an over-budget schedule) can keep
    /// availability below `t + 1`.
    InsufficientAvailability {
        /// Nodes whose availability-vote instance decided 1.
        available: usize,
        /// Votes required for a collective decide (`t + 1`).
        needed: usize,
    },
    /// The vote decided but this node's payload fetch from `asked`
    /// available voters produced no digest-matching payload. Unreachable
    /// within budget on a reliable wire (any `t + 1` voters include a
    /// correct holder); kept structured for defense in depth.
    FetchFailed {
        /// Distinct available voters this node asked.
        asked: usize,
    },
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::MissingDigest => write!(f, "no agreed digest"),
            AbortReason::InsufficientChunks { held, needed } => {
                write!(f, "only {held} of {needed} required chunks")
            }
            AbortReason::DigestMismatch => write!(f, "reconstruction contradicts agreed digest"),
            AbortReason::InsufficientAvailability { available, needed } => write!(
                f,
                "sender failed to make the payload available: {available} of {needed} required votes"
            ),
            AbortReason::FetchFailed { asked } => {
                write!(f, "no digest-matching payload from {asked} available voters")
            }
        }
    }
}

/// A node's extension-protocol outcome: the payload, or a structured
/// abort. Never a payload whose digest differs from the agreed one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExtDecision {
    /// Decided this exact payload (digest-verified).
    Decide(Bytes),
    /// Gave up, with the reason.
    Abort(AbortReason),
}

impl ExtDecision {
    /// The decided payload, when there is one.
    pub fn payload(&self) -> Option<&Bytes> {
        match self {
            ExtDecision::Decide(p) => Some(p),
            ExtDecision::Abort(_) => None,
        }
    }
}

/// One dissemination participant.
///
/// Node 0 is the sender: it encodes, signs and disperses the chunks.
/// Every node (sender included) then runs the same grid exchange:
/// row-broadcast its own chunk, bundle its row's chunks down its column,
/// request repairs from row mates, answer repair requests. Repair replies
/// are load-balanced: for each `(requester, chunk)` a single row mate is
/// designated by deterministic rank rotation, and only if its reply never
/// lands does the requester escalate to the full row. `finalize`
/// reconstructs and digest-verifies into a *provisional* decision — the
/// availability vote and fetch round turn it into the agreed one.
#[derive(Debug)]
pub struct ExtActor {
    id: ProcessId,
    grid: Grid,
    coder: Coder,
    digest: Option<[u8; DIGEST_LEN]>,
    payload_len: Option<u64>,
    verifier: Verifier,
    chunks: Vec<Option<SignedChunk>>,
    /// Sender only: chunks staged for the disperse phase.
    outgoing: Option<Vec<SignedChunk>>,
    repair_requests: Vec<(ProcessId, Vec<u16>)>,
    decision: Option<ExtDecision>,
    board: Arc<Board<ExtDecision>>,
}

impl ExtActor {
    const SENDER: ProcessId = ProcessId(0);

    fn try_store(&mut self, chunk: SignedChunk) {
        let idx = chunk.index as usize;
        if idx >= self.chunks.len() || self.chunks[idx].is_some() {
            return;
        }
        if !chunk.verify(&self.verifier, Self::SENDER) {
            return;
        }
        if self.payload_len.is_none() {
            self.payload_len = Some(chunk.payload_len);
        }
        self.chunks[idx] = Some(chunk);
    }

    fn absorb(&mut self, inbox: &[Envelope<ExtMsg>]) {
        for env in inbox {
            match &env.payload {
                ExtMsg::Chunk(chunk) => self.try_store(chunk.clone()),
                ExtMsg::Bundle(chunks) => {
                    for chunk in chunks {
                        self.try_store(chunk.clone());
                    }
                }
                ExtMsg::Repair(missing) => {
                    self.repair_requests.push((env.from, missing.clone()));
                }
                // Fetch traffic belongs to the post-vote round; a chunk
                // actor receiving it (only possible from a faulty peer)
                // ignores it.
                ExtMsg::Fetch | ExtMsg::Full(_) => {}
            }
        }
    }

    fn held(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_some()).count()
    }

    fn missing(&self) -> Vec<u16> {
        (0..self.chunks.len())
            .filter(|&i| self.chunks[i].is_none())
            .map(|i| i as u16)
            .collect()
    }

    /// The row mate designated to answer `requester`'s repair request for
    /// `chunk`: deterministic rank rotation over the requester's row, so
    /// repair load spreads across the row instead of every mate answering
    /// every request (up to m× duplicate traffic).
    fn designated_responder(grid: &Grid, requester: usize, chunk: usize) -> ProcessId {
        let mates: Vec<ProcessId> = grid.row_mates(requester).collect();
        mates[(requester + chunk) % mates.len()]
    }

    /// Answers the buffered repair requests. In the designated round each
    /// `(requester, chunk)` pair is served by exactly one row mate; in the
    /// escalation round every holder answers.
    fn answer_repairs(&mut self, designated_only: bool, out: &mut Outbox<ExtMsg>) {
        let requests = std::mem::take(&mut self.repair_requests);
        for (requester, wanted) in requests {
            let available: Vec<SignedChunk> = wanted
                .iter()
                .filter(|&&i| {
                    !designated_only
                        || Self::designated_responder(&self.grid, requester.index(), i as usize)
                            == self.id
                })
                .filter_map(|&i| self.chunks.get(i as usize).cloned().flatten())
                .collect();
            if !available.is_empty() {
                out.send(requester, ExtMsg::Bundle(available));
            }
        }
    }

    fn decide(&mut self) {
        let decision = self.compute_decision();
        self.board.post(self.id, decision.clone());
        self.decision = Some(decision);
    }

    fn compute_decision(&self) -> ExtDecision {
        let Some(digest) = self.digest else {
            return ExtDecision::Abort(AbortReason::MissingDigest);
        };
        let held = self.held();
        if held < self.coder.k() {
            return ExtDecision::Abort(AbortReason::InsufficientChunks {
                held,
                needed: self.coder.k(),
            });
        }
        let Some(len) = self.payload_len else {
            return ExtDecision::Abort(AbortReason::InsufficientChunks {
                held: 0,
                needed: self.coder.k(),
            });
        };
        let data: Vec<Option<Bytes>> = self
            .chunks
            .iter()
            .map(|c| c.as_ref().map(|chunk| chunk.data.clone()))
            .collect();
        match self.coder.reconstruct(&data, len as usize) {
            Some(payload) if Sha256::digest(&payload) == digest => {
                ExtDecision::Decide(Bytes::from(payload))
            }
            Some(_) => ExtDecision::Abort(AbortReason::DigestMismatch),
            None => ExtDecision::Abort(AbortReason::InsufficientChunks {
                held,
                needed: self.coder.k(),
            }),
        }
    }
}

impl Actor<ExtMsg> for ExtActor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<ExtMsg>], out: &mut Outbox<ExtMsg>) {
        self.absorb(inbox);
        let id = self.id.index();
        match phase {
            // Disperse: the sender hands chunk i to node i.
            1 => {
                if let Some(chunks) = self.outgoing.take() {
                    for chunk in chunks {
                        let owner = ProcessId(u32::from(chunk.index));
                        if owner == self.id {
                            self.try_store(chunk);
                        } else {
                            // The sender keeps every chunk (it can answer
                            // any repair) and sends node i its chunk.
                            self.try_store(chunk.clone());
                            out.send(owner, ExtMsg::Chunk(chunk));
                        }
                    }
                }
            }
            // Row broadcast: own chunk to row mates.
            2 => {
                if let Some(own) = self.chunks[id].clone() {
                    out.broadcast(self.grid.row_mates(id), ExtMsg::Chunk(own));
                }
            }
            // Column bundles: my row's chunks to my column mates. After
            // this phase a fault-free node holds every chunk: column mate
            // r delivered row r's chunks.
            3 => {
                let bundle: Vec<SignedChunk> = self
                    .grid
                    .row_indices(id)
                    .filter_map(|i| self.chunks[i].clone())
                    .collect();
                if !bundle.is_empty() {
                    out.broadcast(self.grid.col_mates(id), ExtMsg::Bundle(bundle));
                }
            }
            // Repair requests: ask row mates for whatever is missing
            // (fault-free: nothing, and the round is free).
            4 => {
                let missing = self.missing();
                if !missing.is_empty() {
                    out.broadcast(self.grid.row_mates(id), ExtMsg::Repair(missing));
                }
            }
            // Designated repair responses: one responder per (requester,
            // chunk), so a repairable fault costs one reply, not m.
            5 => self.answer_repairs(true, out),
            // Escalation re-requests, only for chunks whose designated
            // reply never landed (its responder was faulty or withheld).
            6 => {
                let missing = self.missing();
                if !missing.is_empty() {
                    out.broadcast(self.grid.row_mates(id), ExtMsg::Repair(missing));
                }
            }
            // Full-row escalation responses: every holder answers.
            7 => self.answer_repairs(false, out),
            _ => {}
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<ExtMsg>]) {
        self.absorb(inbox);
        self.decide();
    }

    fn decision(&self) -> Option<Value> {
        // The engine's decision channel is a single `Value`; the payload
        // itself is read from the board. Deciding nodes report the first
        // agreed-digest word, aborting nodes report nothing.
        match &self.decision {
            Some(ExtDecision::Decide(_)) => {
                let digest = self.digest.expect("decided without digest");
                Some(Value(u64::from_be_bytes(
                    digest[..8].try_into().expect("digest has 8-byte prefix"),
                )))
            }
            _ => None,
        }
    }
}

/// One payload-fetch participant (the round after the availability vote).
///
/// Built from a node's post-vote state: its provisional reconstruction,
/// its (agreed) availability set and the collective outcome. When the
/// vote decided and this node lacks the payload, it asks one
/// deterministically-ranked available voter, then escalates to the next
/// `t` — `t + 1` distinct voters include a correct holder, so within
/// budget the fetch always lands. Responses are verified against the
/// agreed digest before acceptance. When the vote aborted, every node
/// finalizes the identical [`AbortReason::InsufficientAvailability`].
#[derive(Debug)]
pub struct FetchActor {
    id: ProcessId,
    digest: Option<[u8; DIGEST_LEN]>,
    /// The provisionally reconstructed payload, if any; fetched bytes
    /// land here after digest verification.
    payload: Option<Bytes>,
    /// The agreed availability set, as this node derived it from the vote
    /// instances (identical at every correct node).
    available: Vec<ProcessId>,
    /// Whether the collective vote decided (`|available| ≥ t + 1`).
    outcome_decide: bool,
    t: usize,
    fetch_requests: Vec<ProcessId>,
    asked: usize,
    decision: Option<ExtDecision>,
    board: Arc<Board<ExtDecision>>,
}

impl FetchActor {
    /// Voters this node would ask, in order: the availability set rotated
    /// by the node's own id (spreading fetch load across voters), self
    /// excluded.
    fn fetch_order(&self) -> Vec<ProcessId> {
        let len = self.available.len();
        if len == 0 {
            return Vec::new();
        }
        let start = self.id.index() % len;
        (0..len)
            .map(|j| self.available[(start + j) % len])
            .filter(|&p| p != self.id)
            .collect()
    }

    fn needs_payload(&self) -> bool {
        self.outcome_decide && self.payload.is_none()
    }

    fn absorb(&mut self, inbox: &[Envelope<ExtMsg>]) {
        for env in inbox {
            match &env.payload {
                ExtMsg::Fetch => self.fetch_requests.push(env.from),
                ExtMsg::Full(bytes) => {
                    if self.payload.is_none()
                        && self.digest.is_some_and(|d| Sha256::digest(bytes) == d)
                    {
                        self.payload = Some(bytes.clone());
                    }
                }
                // Chunk traffic belongs to the dissemination round.
                ExtMsg::Chunk(_) | ExtMsg::Bundle(_) | ExtMsg::Repair(_) => {}
            }
        }
    }

    fn respond(&mut self, out: &mut Outbox<ExtMsg>) {
        let requests = std::mem::take(&mut self.fetch_requests);
        if let Some(payload) = &self.payload {
            for requester in requests {
                out.send(requester, ExtMsg::Full(payload.clone()));
            }
        }
    }
}

impl Actor<ExtMsg> for FetchActor {
    fn step(&mut self, phase: usize, inbox: &[Envelope<ExtMsg>], out: &mut Outbox<ExtMsg>) {
        self.absorb(inbox);
        match phase {
            // Ask the designated voter.
            1 if self.needs_payload() => {
                if let Some(&designated) = self.fetch_order().first() {
                    self.asked = 1;
                    out.send(designated, ExtMsg::Fetch);
                }
            }
            // Holders answer.
            2 => self.respond(out),
            // Escalate to the next t voters if the designated reply never
            // landed (its voter was faulty or withheld).
            3 if self.needs_payload() => {
                let order = self.fetch_order();
                let escalation = &order[1.min(order.len())..(1 + self.t).min(order.len())];
                self.asked += escalation.len();
                for &voter in escalation {
                    out.send(voter, ExtMsg::Fetch);
                }
            }
            // Escalation responses.
            4 => self.respond(out),
            _ => {}
        }
    }

    fn finalize(&mut self, inbox: &[Envelope<ExtMsg>]) {
        self.absorb(inbox);
        let decision = if !self.outcome_decide {
            ExtDecision::Abort(AbortReason::InsufficientAvailability {
                available: self.available.len(),
                needed: self.t + 1,
            })
        } else {
            match &self.payload {
                Some(payload) => ExtDecision::Decide(payload.clone()),
                None => ExtDecision::Abort(AbortReason::FetchFailed { asked: self.asked }),
            }
        };
        self.board.post(self.id, decision.clone());
        self.decision = Some(decision);
    }

    fn decision(&self) -> Option<Value> {
        match (&self.decision, self.digest) {
            (Some(ExtDecision::Decide(_)), Some(digest)) => Some(Value(u64::from_be_bytes(
                digest[..8].try_into().expect("digest has 8-byte prefix"),
            ))),
            _ => None,
        }
    }
}

/// Options for [`agree_on_payload`]. Construct with
/// [`ExtOptions::new`]/[`default`](ExtOptions::default) and the `with_*`
/// builders (the same convention as `SvcConfig`, `NetConfig`, `DsOptions`
/// and `Alg3Options`).
///
/// Defaults: `n = 16`, `t = 2`, seed 0, sequential stepping, scoped
/// threads, fast scheme, `ds-broadcast` inner target.
#[derive(Clone, Debug)]
pub struct ExtOptions {
    /// Number of processors; must be a perfect square `m² ≥ 4` (the grid).
    pub n: usize,
    /// Fault budget. Dissemination tolerates `t ≤ m − 1` (each missing
    /// chunk must be repairable through some fully-honest column pair)
    /// and coding requires `k = n − 2t ≥ 1`.
    pub t: usize,
    /// Run seed (keys, inner-BA seeds).
    pub seed: u64,
    /// Worker threads for intra-phase stepping (results byte-identical
    /// at any count).
    pub threads: usize,
    /// When set, dissemination rides the process-wide
    /// [`WorkerPool::shared`] instead of per-run scoped threads.
    pub pooled: bool,
    /// Tag scheme for chunk signatures.
    pub scheme: SchemeKind,
    /// Name of the inner-BA target for digest agreement (must be
    /// multi-valued; see [`ba_algos::checkable::targets`]).
    pub inner: &'static str,
    /// Name of the inner-BA target for the `n` availability-vote
    /// instances (must be multi-valued — each instance transmits from a
    /// different node). Defaults to the committee-relay variant: the vote
    /// runs `n` parallel one-word instances, so its O(nt)-message shape
    /// keeps total vote traffic at O(n²t) instead of O(n³).
    pub vote_inner: &'static str,
}

impl Default for ExtOptions {
    fn default() -> Self {
        ExtOptions {
            n: 16,
            t: 2,
            seed: 0,
            threads: 1,
            pooled: false,
            scheme: SchemeKind::Fast,
            inner: "ds-broadcast",
            vote_inner: "ds-relay",
        }
    }
}

impl ExtOptions {
    /// The default options; chain `with_*` builders to customize.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the processor count (must be a perfect square `m² ≥ 4`).
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the fault budget.
    pub fn with_t(mut self, t: usize) -> Self {
        self.t = t;
        self
    }

    /// Sets the run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for intra-phase stepping.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Routes dissemination over the process-wide shared pool.
    pub fn with_pooled(mut self, pooled: bool) -> Self {
        self.pooled = pooled;
        self
    }

    /// Sets the chunk-signature scheme.
    pub fn with_scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the inner-BA target for digest agreement.
    pub fn with_inner(mut self, inner: &'static str) -> Self {
        self.inner = inner;
        self
    }

    /// Sets the inner-BA target for the availability vote.
    pub fn with_vote_inner(mut self, vote_inner: &'static str) -> Self {
        self.vote_inner = vote_inner;
        self
    }

    /// Grid side `m = √n`.
    pub fn grid_side(&self) -> usize {
        (self.n as f64).sqrt().round() as usize
    }

    /// Chunks required to reconstruct: `k = n − 2t`.
    pub fn data_chunks(&self) -> usize {
        self.n - 2 * self.t
    }

    /// Availability votes required for a collective decide: `t + 1`, so
    /// any quorum contains at least one correct holder.
    pub fn vote_needed(&self) -> usize {
        self.t + 1
    }

    /// Validates the geometry and inner-target choice.
    ///
    /// # Errors
    /// A human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let Some(grid) = Grid::new(self.n) else {
            return Err(format!("n = {} is not a perfect square ≥ 4", self.n));
        };
        if self.t >= grid.m {
            return Err(format!(
                "t = {} exceeds the grid bound √n − 1 = {}",
                self.t,
                grid.m - 1
            ));
        }
        if 2 * self.t >= self.n {
            return Err(format!(
                "k = n − 2t would be ≤ 0 (n = {}, t = {})",
                self.n, self.t
            ));
        }
        for (role, name) in [("inner", self.inner), ("vote inner", self.vote_inner)] {
            let Some(target) = find_target(name) else {
                return Err(format!("unknown {role} target {name:?}"));
            };
            if !target.multi_valued {
                return Err(format!(
                    "{role} target {name:?} is binary-only; the extension layer needs a \
                     multi-valued target (digest words / per-node vote transmitters)",
                ));
            }
            if self.t >= 1 && !target.supports(self.n, self.t) {
                return Err(format!(
                    "{role} target {name:?} rejects n = {}, t = {}",
                    self.n, self.t
                ));
            }
        }
        Ok(())
    }

    fn inner_target(&self) -> &'static CheckTarget {
        find_target(self.inner).expect("validated inner target")
    }

    fn vote_target(&self) -> &'static CheckTarget {
        find_target(self.vote_inner).expect("validated vote target")
    }
}

/// What one extension-protocol run produced.
#[derive(Debug, PartialEq)]
pub struct ExtReport {
    /// Payload length ℓ in bytes.
    pub payload_len: usize,
    /// The sender's payload digest (what honest runs agree on).
    pub digest: [u8; DIGEST_LEN],
    /// Per-node *agreed* outcomes (index = processor id; `None` only if a
    /// faulty actor never posted). Every correct node's entry carries the
    /// same variant — all `Decide(payload)` or all `Abort` with the
    /// identical reason.
    pub decisions: Vec<Option<ExtDecision>>,
    /// Which processors were modeled correct.
    pub correct: Vec<bool>,
    /// The agreed availability set (nodes whose vote instance decided 1),
    /// as derived by the lowest-id correct node; empty when no node is
    /// correct.
    pub availability: Vec<ProcessId>,
    /// Merged metrics of the four digest-word inner-BA runs.
    pub inner_metrics: Metrics,
    /// Dissemination-phase metrics (chunk traffic).
    pub dissemination: Metrics,
    /// Merged metrics of the `n` availability-vote inner-BA runs.
    pub vote: Metrics,
    /// Payload-fetch round metrics.
    pub fetch: Metrics,
    /// Repair/fetch requests sent by correct nodes (dissemination repair
    /// phases 4 and 6, fetch phases 1 and 3). Fault-free: zero.
    pub repair_requests: u64,
    /// Bytes of repair/fetch responses sent by correct nodes
    /// (dissemination phases 5 and 7, fetch phases 2 and 4).
    pub repair_response_bytes: u64,
}

impl ExtReport {
    /// Total wire bytes sent by correct processors, across digest
    /// agreement, dissemination, the availability vote and the fetch
    /// round.
    pub fn total_wire_bytes(&self) -> u64 {
        self.inner_metrics.wire_bytes()
            + self.dissemination.wire_bytes()
            + self.vote.wire_bytes()
            + self.fetch.wire_bytes()
    }

    /// The payload portion of [`total_wire_bytes`](Self::total_wire_bytes).
    pub fn payload_wire_bytes(&self) -> u64 {
        self.inner_metrics.payload_bytes_by_correct
            + self.dissemination.payload_bytes_by_correct
            + self.vote.payload_bytes_by_correct
            + self.fetch.payload_bytes_by_correct
    }

    /// Correct-sender wire volume relative to the `ℓ·n` lower-bound
    /// regime (the figure the overhead gate bounds).
    pub fn overhead_ratio(&self) -> f64 {
        let floor = (self.payload_len as u64).max(1) * self.correct.len() as u64;
        self.total_wire_bytes() as f64 / floor as f64
    }

    /// Outcomes of correct processors only, with their ids.
    pub fn correct_decisions(
        &self,
    ) -> impl Iterator<Item = (ProcessId, Option<&ExtDecision>)> + '_ {
        self.decisions
            .iter()
            .enumerate()
            .filter(|(i, _)| self.correct[*i])
            .map(|(i, d)| (ProcessId(i as u32), d.as_ref()))
    }
}

/// Errors from [`agree_on_payload`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExtError {
    /// The options failed [`ExtOptions::validate`].
    BadOptions(String),
    /// The fault schedule could not be compiled onto the actors.
    Schedule(ScheduleError),
}

impl std::fmt::Display for ExtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtError::BadOptions(msg) => write!(f, "bad options: {msg}"),
            ExtError::Schedule(err) => write!(f, "schedule error: {err}"),
        }
    }
}

impl std::error::Error for ExtError {}

/// Agrees on `payload` across `opts.n` processors with node 0 as sender,
/// fault-free. See [`run_extension`] for the schedule-driven variant the
/// checker explores.
///
/// # Errors
/// [`ExtError::BadOptions`] when the geometry or inner target is invalid.
pub fn agree_on_payload(payload: &Bytes, opts: &ExtOptions) -> Result<ExtReport, ExtError> {
    run_extension(payload, opts, &ScheduleSpec::default(), |actors| actors)
}

/// Seed for the `w`-th digest-word inner-BA run.
pub(crate) fn word_seed(seed: u64, w: usize) -> u64 {
    seed ^ (0xE87_0000 + w as u64)
}

/// Seed shared by the `n` availability-vote inner-BA runs (one cluster
/// identity — the instances differ by transmitter and vote value, which
/// is what lets the service layer multiplex them over one wire).
pub(crate) fn vote_seed(seed: u64) -> u64 {
    seed ^ 0xA0BA_0001
}

/// Seed for the dissemination/fetch chunk-signature registry.
pub(crate) fn chunk_seed(seed: u64) -> u64 {
    seed ^ 0xD15E_0001
}

/// Applies a schedule's generic fault behaviours onto extension actors
/// (equivocation is not mappable here — the sender's "equivocation" is
/// signing inconsistent chunks, which the check layer injects through
/// the rewrite hook).
pub(crate) fn apply_spec_faults(
    actors: &mut [Box<dyn Actor<ExtMsg>>],
    spec: &ScheduleSpec,
) -> Result<(), ScheduleError> {
    for (p, behavior) in &spec.faults {
        let honest = std::mem::replace(
            &mut actors[p.index()],
            Box::new(NullActor) as Box<dyn Actor<ExtMsg>>,
        );
        actors[p.index()] = behavior.apply(honest)?;
    }
    Ok(())
}

/// Per-node digest views assembled from each node's OWN word decisions —
/// agreement on the full digest follows from agreement on every word.
pub(crate) fn assemble_digest_views(
    word_views: &[Vec<Option<u64>>],
    n: usize,
) -> Vec<Option<[u8; DIGEST_LEN]>> {
    (0..n)
        .map(|i| {
            let mut out = [0u8; DIGEST_LEN];
            let mut complete = true;
            for (w, view) in word_views.iter().enumerate() {
                match view[i] {
                    Some(word) => out[w * 8..(w + 1) * 8].copy_from_slice(&word.to_be_bytes()),
                    None => complete = false,
                }
            }
            complete.then_some(out)
        })
        .collect()
}

/// The state shared by the lock-step and ba-net drivers: chunk-signing
/// registry, signed outgoing chunks, and the run-A actor builder.
pub(crate) struct ExtSetup {
    pub(crate) grid: Grid,
    pub(crate) coder: Coder,
    pub(crate) registry: KeyRegistry,
}

impl ExtSetup {
    pub(crate) fn new(opts: &ExtOptions) -> ExtSetup {
        ExtSetup {
            grid: Grid::new(opts.n).expect("validated geometry"),
            coder: Coder::new(opts.data_chunks(), opts.n),
            registry: KeyRegistry::new(opts.n, chunk_seed(opts.seed), opts.scheme),
        }
    }

    pub(crate) fn sign_chunks(&self, payload: &Bytes) -> Vec<SignedChunk> {
        let sender_signer = self.registry.signer(ExtActor::SENDER);
        self.coder
            .encode(payload)
            .into_iter()
            .enumerate()
            .map(|(i, data)| {
                SignedChunk::sign(&sender_signer, i as u16, payload.len() as u64, data)
            })
            .collect()
    }

    /// The dissemination (run A) actors, posting provisional decisions to
    /// `board`.
    pub(crate) fn dissemination_actors(
        &self,
        opts: &ExtOptions,
        payload: &Bytes,
        digest_views: &[Option<[u8; DIGEST_LEN]>],
        outgoing: &[SignedChunk],
        board: &Arc<Board<ExtDecision>>,
    ) -> Vec<Box<dyn Actor<ExtMsg>>> {
        (0..opts.n)
            .map(|i| {
                Box::new(ExtActor {
                    id: ProcessId(i as u32),
                    grid: self.grid,
                    coder: self.coder,
                    digest: digest_views[i],
                    payload_len: (i == 0).then_some(payload.len() as u64),
                    verifier: self.registry.verifier(),
                    chunks: vec![None; opts.n],
                    outgoing: (i == 0).then(|| outgoing.to_vec()),
                    repair_requests: Vec::new(),
                    decision: None,
                    board: Arc::clone(board),
                }) as Box<dyn Actor<ExtMsg>>
            })
            .collect()
    }

    /// The post-vote fetch (run B) actors, posting the agreed decisions
    /// to `board`. `provisional` is run A's board snapshot; `vote_views`
    /// holds per-instance per-node vote decisions
    /// (`vote_views[instance][node]`).
    pub(crate) fn fetch_actors(
        &self,
        opts: &ExtOptions,
        digest_views: &[Option<[u8; DIGEST_LEN]>],
        provisional: &[Option<ExtDecision>],
        vote_views: &[Vec<Option<Value>>],
        board: &Arc<Board<ExtDecision>>,
    ) -> Vec<Box<dyn Actor<ExtMsg>>> {
        (0..opts.n)
            .map(|i| {
                let available: Vec<ProcessId> = (0..opts.n)
                    .filter(|&v| vote_views[v][i] == Some(Value::ONE))
                    .map(|v| ProcessId(v as u32))
                    .collect();
                let outcome_decide = available.len() >= opts.vote_needed();
                Box::new(FetchActor {
                    id: ProcessId(i as u32),
                    digest: digest_views[i],
                    payload: provisional[i].as_ref().and_then(|d| d.payload().cloned()),
                    available,
                    outcome_decide,
                    t: opts.t,
                    fetch_requests: Vec::new(),
                    asked: 0,
                    decision: None,
                    board: Arc::clone(board),
                }) as Box<dyn Actor<ExtMsg>>
            })
            .collect()
    }
}

/// Availability votes derived from run A's provisional board: node `v`
/// votes 1 iff it provisionally decided (reconstructed a digest-matching
/// payload). Faulty nodes that never posted vote 0. Public so
/// [`net::multiplex_votes`] callers can derive vote inputs from a
/// provisional snapshot.
pub fn vote_inputs(provisional: &[Option<ExtDecision>]) -> Vec<Value> {
    provisional
        .iter()
        .map(|d| match d {
            Some(ExtDecision::Decide(_)) => Value::ONE,
            _ => Value::ZERO,
        })
        .collect()
}

/// The inner-BA config for availability-vote instance `v`: node `v`
/// transmits its own vote.
pub(crate) fn vote_cfg(
    opts: &ExtOptions,
    spec: &ScheduleSpec,
    v: usize,
    vote: Value,
) -> CheckConfig {
    let mut cfg = CheckConfig::new(
        opts.n,
        opts.t.max(1),
        vote,
        vote_seed(opts.seed),
        opts.threads,
        spec.clone(),
    );
    cfg.transmitter = ProcessId(v as u32);
    cfg
}

/// Sums the demand-driven request messages (dissemination phases 4 and 6,
/// fetch phases 1 and 3) sent by correct nodes.
pub(crate) fn count_repair_requests(dissemination: &Metrics, fetch: &Metrics) -> u64 {
    let phase = |m: &Metrics, p: usize| {
        m.per_phase
            .get(p - 1)
            .map_or(0, |ph| ph.messages_by_correct)
    };
    phase(dissemination, 4) + phase(dissemination, 6) + phase(fetch, 1) + phase(fetch, 3)
}

/// Sums the response bytes (dissemination phases 5 and 7, fetch phases 2
/// and 4) sent by correct nodes.
pub(crate) fn count_repair_response_bytes(dissemination: &Metrics, fetch: &Metrics) -> u64 {
    let phase = |m: &Metrics, p: usize| m.per_phase.get(p - 1).map_or(0, |ph| ph.bytes_by_correct);
    phase(dissemination, 5) + phase(dissemination, 7) + phase(fetch, 2) + phase(fetch, 4)
}

/// [`agree_on_payload`] with a fault schedule compiled onto every stage
/// (the spec's faulty processors are faulty for digest agreement,
/// dissemination, the availability vote *and* the fetch round), plus a
/// hook rewriting the dissemination and fetch actors (the check layer
/// injects chunk-withholding / garbling adversaries there; it is invoked
/// once per stage, so it must be callable twice).
///
/// # Errors
/// [`ExtError::BadOptions`] on invalid geometry, [`ExtError::Schedule`]
/// when the spec cannot be mapped onto the actors.
pub fn run_extension(
    payload: &Bytes,
    opts: &ExtOptions,
    spec: &ScheduleSpec,
    rewrite: impl Fn(Vec<Box<dyn Actor<ExtMsg>>>) -> Vec<Box<dyn Actor<ExtMsg>>>,
) -> Result<ExtReport, ExtError> {
    opts.validate().map_err(ExtError::BadOptions)?;
    spec.validate(opts.n, opts.t)
        .map_err(ExtError::BadOptions)?;
    let digest = Sha256::digest(payload);
    let words: Vec<u64> = digest
        .chunks_exact(8)
        .map(|w| u64::from_be_bytes(w.try_into().expect("8-byte digest word")))
        .collect();

    let run_inner = |target: &CheckTarget, cfg: &CheckConfig| -> Result<_, ExtError> {
        let setup = target.build(cfg).map_err(ExtError::Schedule)?;
        let mut sim = Simulation::new(setup.actors)
            .with_threads(opts.threads)
            .with_registry(&setup.registry)
            .with_link_drops(spec.link_drops.iter().copied());
        Ok(sim.run(setup.phases))
    };

    // Stage 1 — digest agreement: one inner-BA run per digest word.
    let target = opts.inner_target();
    let mut inner_metrics = Metrics::default();
    let mut word_views: Vec<Vec<Option<u64>>> = Vec::with_capacity(words.len());
    for (w, &word) in words.iter().enumerate() {
        let cfg = CheckConfig::new(
            opts.n,
            opts.t.max(1),
            Value(word),
            word_seed(opts.seed, w),
            opts.threads,
            spec.clone(),
        );
        let outcome = run_inner(target, &cfg)?;
        inner_metrics.merge(&outcome.metrics);
        word_views.push(outcome.decisions.iter().map(|d| d.map(|v| v.0)).collect());
    }
    let digest_views = assemble_digest_views(&word_views, opts.n);

    // Stage 2 — dissemination: encode, sign, run the grid exchange into
    // provisional decisions.
    let setup = ExtSetup::new(opts);
    let outgoing = setup.sign_chunks(payload);
    let provisional_board = Board::new(opts.n);
    let mut actors =
        setup.dissemination_actors(opts, payload, &digest_views, &outgoing, &provisional_board);
    apply_spec_faults(&mut actors, spec).map_err(ExtError::Schedule)?;
    let actors = rewrite(actors);

    let run_grid = |actors: Vec<Box<dyn Actor<ExtMsg>>>, phases: usize| {
        let shared_pool;
        let mut sim = Simulation::new(actors)
            .with_threads(opts.threads)
            .with_registry(&setup.registry)
            .with_link_drops(spec.link_drops.iter().copied());
        if opts.pooled {
            shared_pool = WorkerPool::shared();
            sim = sim.with_pool(&shared_pool);
        }
        sim.run(phases)
    };
    let dissemination_outcome = run_grid(actors, DISSEMINATION_PHASES);
    let provisional = provisional_board.snapshot();

    // Stage 3 — availability vote: n parallel one-word inner-BA
    // instances, instance v transmitted by node v.
    let votes = vote_inputs(&provisional);
    let vote_target = opts.vote_target();
    let mut vote_metrics = Metrics::default();
    let mut vote_views: Vec<Vec<Option<Value>>> = Vec::with_capacity(opts.n);
    for (v, &vote) in votes.iter().enumerate() {
        let cfg = vote_cfg(opts, spec, v, vote);
        let outcome = run_inner(vote_target, &cfg)?;
        vote_metrics.merge(&outcome.metrics);
        vote_views.push(outcome.decisions);
    }

    // Stage 4 — payload fetch: nodes lacking the payload pull it from
    // available voters; everyone finalizes the agreed decision.
    let board = Board::new(opts.n);
    let mut actors = setup.fetch_actors(opts, &digest_views, &provisional, &vote_views, &board);
    apply_spec_faults(&mut actors, spec).map_err(ExtError::Schedule)?;
    let actors = rewrite(actors);
    let fetch_outcome = run_grid(actors, FETCH_PHASES);

    let correct = fetch_outcome.correct;
    let availability = correct
        .iter()
        .position(|&c| c)
        .map(|i| {
            (0..opts.n)
                .filter(|&v| vote_views[v][i] == Some(Value::ONE))
                .map(|v| ProcessId(v as u32))
                .collect()
        })
        .unwrap_or_default();

    Ok(ExtReport {
        payload_len: payload.len(),
        digest,
        decisions: board.snapshot(),
        correct,
        availability,
        repair_requests: count_repair_requests(
            &dissemination_outcome.metrics,
            &fetch_outcome.metrics,
        ),
        repair_response_bytes: count_repair_response_bytes(
            &dissemination_outcome.metrics,
            &fetch_outcome.metrics,
        ),
        inner_metrics,
        dissemination: dissemination_outcome.metrics,
        vote: vote_metrics,
        fetch: fetch_outcome.metrics,
    })
}

/// Placeholder actor used while splicing fault wrappers in.
#[derive(Debug)]
pub(crate) struct NullActor;

impl Actor<ExtMsg> for NullActor {
    fn step(&mut self, _: usize, _: &[Envelope<ExtMsg>], _: &mut Outbox<ExtMsg>) {}
    fn decision(&self) -> Option<Value> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize, seed: u64) -> Bytes {
        let mut rng = ba_crypto::rng::SimRng::new(seed);
        Bytes::from((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn grid_geometry() {
        assert!(Grid::new(3).is_none());
        assert!(Grid::new(1).is_none());
        let g = Grid::new(9).unwrap();
        assert_eq!(g.m, 3);
        assert_eq!(
            g.row_mates(4).collect::<Vec<_>>(),
            vec![ProcessId(3), ProcessId(5)]
        );
        assert_eq!(
            g.col_mates(4).collect::<Vec<_>>(),
            vec![ProcessId(1), ProcessId(7)]
        );
        assert_eq!(g.row_indices(7), 6..9);
    }

    #[test]
    fn signed_chunks_verify_and_reject_tampering() {
        let reg = KeyRegistry::new(4, 9, SchemeKind::Fast);
        let signer = reg.signer(ProcessId(0));
        let chunk = SignedChunk::sign(&signer, 3, 100, Bytes::from(vec![1, 2, 3]));
        assert!(chunk.verify(&reg.verifier(), ProcessId(0)));
        // Wrong claimed sender.
        assert!(!chunk.verify(&reg.verifier(), ProcessId(1)));
        // Garbled data.
        let mut garbled = chunk.clone();
        garbled.data = Bytes::from(vec![1, 2, 4]);
        assert!(!garbled.verify(&reg.verifier(), ProcessId(0)));
        // Re-indexed.
        let mut moved = chunk.clone();
        moved.index = 2;
        assert!(!moved.verify(&reg.verifier(), ProcessId(0)));
        // Signed by a non-sender identity.
        let fake = SignedChunk::sign(
            &reg.signer(ProcessId(2)),
            3,
            100,
            Bytes::from(vec![1, 2, 3]),
        );
        assert!(!fake.verify(&reg.verifier(), ProcessId(0)));
    }

    #[test]
    fn ext_msg_accounting_is_consistent() {
        let reg = KeyRegistry::new(4, 9, SchemeKind::Fast);
        let chunk = SignedChunk::sign(&reg.signer(ProcessId(0)), 0, 8, Bytes::from(vec![0; 8]));
        let msg = ExtMsg::Chunk(chunk.clone());
        assert!(msg.payload_bytes() <= msg.weight_bytes());
        assert_eq!(msg.payload_bytes(), 8);
        assert_eq!(msg.signature_count(), 1);
        let bundle = ExtMsg::Bundle(vec![chunk.clone(), chunk]);
        assert_eq!(bundle.payload_bytes(), 16);
        assert_eq!(bundle.signature_count(), 2);
        let repair = ExtMsg::Repair(vec![1, 2, 3]);
        assert_eq!(repair.payload_bytes(), 0);
        assert!(repair.weight_bytes() > 0);
    }

    #[test]
    fn fault_free_run_decides_everywhere() {
        let p = payload(10_000, 42);
        let report = agree_on_payload(&p, &ExtOptions::default()).unwrap();
        assert_eq!(report.payload_len, 10_000);
        for (id, decision) in report.correct_decisions() {
            match decision {
                Some(ExtDecision::Decide(bytes)) => assert_eq!(bytes, &p, "{id}"),
                other => panic!("{id} did not decide: {other:?}"),
            }
        }
        // Fault-free repair rounds are silent: phases 4–7 carry no
        // correct-sender traffic, and the counters agree.
        let per_phase = &report.dissemination.per_phase;
        for (repair_phase, metrics) in per_phase.iter().enumerate().skip(3) {
            assert_eq!(metrics.messages_by_correct, 0, "phase {}", repair_phase + 1);
        }
        assert_eq!(report.repair_requests, 0);
        assert_eq!(report.repair_response_bytes, 0);
        // Everyone reconstructed, so every node is in the availability set
        // and the fetch round is silent.
        assert_eq!(report.availability.len(), report.correct.len());
        assert_eq!(report.fetch.messages_by_correct, 0);
        // The vote ran: n inner-BA instances moved real traffic.
        assert!(report.vote.messages_by_correct > 0);
        // The column-bundle phase dominates the byte volume.
        assert!(per_phase[2].bytes_by_correct > per_phase[1].bytes_by_correct);
        // Wire volume is within the gated constant of ℓ·n.
        assert!(
            report.overhead_ratio() < 4.0,
            "overhead {}",
            report.overhead_ratio()
        );
        // Payload/control split is sane: chunk data dominates.
        assert!(report.dissemination.payload_bytes_by_correct > 0);
        assert!(
            report.dissemination.payload_bytes_by_correct < report.dissemination.bytes_by_correct
        );
    }

    #[test]
    fn options_validation_catches_bad_geometry() {
        let mut opts = ExtOptions {
            n: 15,
            ..ExtOptions::default()
        };
        assert!(opts.validate().is_err(), "non-square n");
        opts.n = 16;
        opts.t = 4;
        assert!(opts.validate().is_err(), "t ≥ √n");
        opts.t = 3;
        assert!(opts.validate().is_ok());
        opts.inner = "algorithm1";
        assert!(opts.validate().is_err(), "binary-only inner target");
        opts.inner = "nope";
        assert!(opts.validate().is_err(), "unknown inner target");
        opts.inner = "ds-broadcast";
        opts.vote_inner = "algorithm1";
        assert!(opts.validate().is_err(), "binary-only vote target");
        opts.vote_inner = "nope";
        assert!(opts.validate().is_err(), "unknown vote target");
        opts.vote_inner = "ds-broadcast";
        assert!(opts.validate().is_ok(), "any multi-valued vote target");
    }

    #[test]
    fn tiny_and_empty_payloads_round_trip() {
        for len in [0usize, 1, 15, 16, 17] {
            let p = payload(len, len as u64 + 7);
            let report = agree_on_payload(&p, &ExtOptions::default()).unwrap();
            for (id, decision) in report.correct_decisions() {
                assert_eq!(
                    decision.and_then(|d| d.payload()),
                    Some(&p),
                    "{id} at len {len}"
                );
            }
        }
    }

    #[test]
    fn threading_is_byte_identical() {
        let p = payload(5_000, 7);
        let base = agree_on_payload(&p, &ExtOptions::default()).unwrap();
        for threads in [4, 8] {
            let opts = ExtOptions {
                threads,
                pooled: true,
                ..ExtOptions::default()
            };
            let report = agree_on_payload(&p, &opts).unwrap();
            assert_eq!(report.decisions, base.decisions, "threads {threads}");
            assert_eq!(
                report.dissemination, base.dissemination,
                "threads {threads}"
            );
            assert_eq!(
                report.inner_metrics, base.inner_metrics,
                "threads {threads}"
            );
            assert_eq!(report.vote, base.vote, "threads {threads}");
            assert_eq!(report.fetch, base.fetch, "threads {threads}");
            assert_eq!(report.availability, base.availability, "threads {threads}");
        }
    }
}
