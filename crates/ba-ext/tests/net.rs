//! The extension layer over the chaos runtime:
//!
//! * under a reliable wire, `run_extension_net` is byte-identical —
//!   decisions *and* every `Metrics` block — to the lock-step
//!   `run_extension` at worker counts 1 and 4, fault-free and with
//!   scheduled faults;
//! * under lossy/stressed chaos it either completes with full outcome
//!   agreement on the right payload or surfaces a structured
//!   `DegradationVerdict` attributed to a stage — never a wrong payload,
//!   never a split outcome, never a panic;
//! * the availability vote's `n` instances multiplex through the service
//!   layer and produce the same per-node views as direct inner-BA runs.

use ba_crypto::rng::SimRng;
use ba_crypto::{Bytes, ProcessId, Value};
use ba_ext::check::{run_scenario, run_scenario_net, ExtScenario};
use ba_ext::net::{multiplex_votes, outcome_agreement, run_extension_net, ExtNetError};
use ba_ext::{run_extension, vote_inputs, ExtDecision, ExtOptions};
use ba_net::{ChaosProfile, NetConfig, SvcConfig};
use ba_sim::schedule::{FaultBehavior, ScheduleSpec};

fn payload(len: usize, seed: u64) -> Bytes {
    let mut rng = SimRng::new(seed);
    Bytes::from((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>())
}

fn silent_spec(p: u32) -> ScheduleSpec {
    ScheduleSpec {
        faults: vec![(ProcessId(p), FaultBehavior::Silent)],
        link_drops: Vec::new(),
    }
}

/// The tentpole equivalence: every stage of the net-driven run lands on
/// the same bytes as the lock-step engine under a reliable wire, at 1 and
/// 4 workers, with and without scheduled faults (including a silent
/// sender, where the agreed outcome is a collective abort).
#[test]
fn reliable_wire_is_byte_identical_to_lockstep_at_one_and_four_workers() {
    for (n, t, len) in [(9usize, 2usize, 6_000usize), (16, 3, 20_000)] {
        let p = payload(len, n as u64 * 7 + 1);
        let opts = ExtOptions {
            n,
            t,
            seed: 17,
            ..ExtOptions::default()
        };
        for spec in [ScheduleSpec::default(), silent_spec(1), silent_spec(0)] {
            let base = run_extension(&p, &opts, &spec, |a| a).expect("lock-step baseline");
            for workers in [1usize, 4] {
                let net = NetConfig {
                    threads: workers,
                    ..NetConfig::default()
                };
                let run =
                    run_extension_net(&p, &opts, &net, &ChaosProfile::reliable(), &spec, |a| a)
                        .unwrap_or_else(|e| panic!("n={n} workers={workers} {spec:?}: {e}"));
                let ctx = format!("n={n} workers={workers} spec={spec:?}");
                assert_eq!(run.report.decisions, base.decisions, "{ctx}");
                assert_eq!(run.report.correct, base.correct, "{ctx}");
                assert_eq!(run.report.availability, base.availability, "{ctx}");
                assert_eq!(run.report.digest, base.digest, "{ctx}");
                assert_eq!(run.report.inner_metrics, base.inner_metrics, "{ctx}");
                assert_eq!(run.report.dissemination, base.dissemination, "{ctx}");
                assert_eq!(run.report.vote, base.vote, "{ctx}");
                assert_eq!(run.report.fetch, base.fetch, "{ctx}");
                assert_eq!(run.report.repair_requests, base.repair_requests, "{ctx}");
                assert_eq!(
                    run.report.repair_response_bytes, base.repair_response_bytes,
                    "{ctx}"
                );
                assert!(
                    run.suspected().is_empty(),
                    "{ctx}: a reliable wire suspects nobody"
                );
            }
        }
    }
}

/// Under seeded chaos the run never decides a wrong payload and never
/// splits the outcome: it either completes with full outcome agreement or
/// degrades with a structured verdict naming the failing stage.
#[test]
fn chaos_decides_right_or_degrades_with_structured_verdict() {
    let opts = ExtOptions {
        n: 9,
        t: 2,
        seed: 4,
        ..ExtOptions::default()
    };
    let p = payload(4_096, 21);
    let mut completed = 0usize;
    let mut degraded = 0usize;
    for seed in 0..6u64 {
        for chaos in [
            ChaosProfile::jitter(seed),
            ChaosProfile::lossy(seed, 200),
            ChaosProfile::stress(seed),
        ] {
            match run_extension_net(
                &p,
                &opts,
                &NetConfig::default(),
                &chaos,
                &ScheduleSpec::default(),
                |a| a,
            ) {
                Ok(run) => {
                    completed += 1;
                    outcome_agreement(&run.report)
                        .unwrap_or_else(|e| panic!("seed {seed}: split outcome: {e}"));
                    for (id, decision) in run.report.correct_decisions() {
                        match decision {
                            Some(ExtDecision::Decide(bytes)) => {
                                assert_eq!(bytes, &p, "seed {seed}: {id} decided a wrong payload")
                            }
                            Some(ExtDecision::Abort(_)) => {}
                            None => panic!("seed {seed}: correct {id} finalized nothing"),
                        }
                    }
                }
                Err(ExtNetError::Degraded { stage, verdict }) => {
                    degraded += 1;
                    // The verdict is attributed: it names the stage and
                    // carries the wire evidence.
                    let text = format!("degraded during {stage}: {verdict}");
                    assert!(!text.is_empty());
                }
                Err(other) => panic!("seed {seed}: unexpected error {other}"),
            }
        }
    }
    assert!(completed > 0, "some chaos runs must survive retransmission");
    // Not asserting `degraded > 0`: whether stress exceeds the budget is
    // seed-dependent; the invariant is only that each run lands in one of
    // the two loud buckets (completed={completed}, degraded={degraded}).
    let _ = degraded;
}

/// Chaos outcomes depend only on the profile seed, not the worker count.
#[test]
fn chaos_runs_are_reproducible_across_worker_counts() {
    let opts = ExtOptions {
        n: 9,
        t: 2,
        seed: 9,
        ..ExtOptions::default()
    };
    let p = payload(2_000, 3);
    let chaos = ChaosProfile::lossy(77, 150);
    let run = |workers: usize| {
        let net = NetConfig {
            threads: workers,
            ..NetConfig::default()
        };
        match run_extension_net(&p, &opts, &net, &chaos, &ScheduleSpec::default(), |a| a) {
            Ok(run) => (
                run.report.decisions.clone(),
                run.suspected(),
                run.physical_transmissions(),
            ),
            Err(ExtNetError::Degraded { verdict, .. }) => {
                (Vec::new(), verdict.suspected.clone(), 0)
            }
            Err(e) => panic!("{e}"),
        }
    };
    assert_eq!(run(1), run(4), "chaos outcome depends only on the seed");
}

/// Garbling scenarios run through the chaos runtime too: on a reliable
/// wire, `run_scenario_net` produces the same report and the same judge
/// verdict as the lock-step `run_scenario`.
#[test]
fn garbling_scenarios_run_identically_over_the_net() {
    let opts = ExtOptions {
        n: 9,
        t: 2,
        seed: 12,
        ..ExtOptions::default()
    };
    let p = payload(3_000, 40);
    let scenario = ExtScenario {
        spec: ScheduleSpec {
            faults: vec![(ProcessId(4), FaultBehavior::Silent)],
            link_drops: Vec::new(),
        },
        garble: vec![ProcessId(7)],
        label: "garble+withhold".into(),
    };
    let base = run_scenario(&p, &opts, &scenario);
    assert!(base.failure.is_none(), "{:?}", base.failure);
    for workers in [1usize, 4] {
        let net = NetConfig {
            threads: workers,
            ..NetConfig::default()
        };
        let (run, failure) =
            run_scenario_net(&p, &opts, &scenario, &net, &ChaosProfile::reliable())
                .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        assert_eq!(failure, base.failure, "workers={workers}");
        assert_eq!(
            Some(&run.report),
            base.report.as_ref(),
            "workers={workers}: net and lock-step reports diverge"
        );
    }
}

/// The `n` availability-vote instances run through the multiplexing
/// service layer: fault-free on a reliable wire, every instance `v`
/// settles on node `v`'s vote at every node, deterministically across
/// worker counts.
#[test]
fn votes_multiplex_through_the_service_layer() {
    let opts = ExtOptions {
        n: 9,
        t: 2,
        seed: 31,
        ..ExtOptions::default()
    };
    // A provisional board where nodes 0..6 reconstructed and 6..9 did not.
    let provisional: Vec<Option<ExtDecision>> = (0..9)
        .map(|i| (i < 6).then(|| ExtDecision::Decide(Bytes::from(vec![1, 2, 3]))))
        .collect();
    let votes = vote_inputs(&provisional);
    assert_eq!(votes.iter().filter(|v| **v == Value::ONE).count(), 6);
    let run = |workers: usize| {
        let svc = SvcConfig::new()
            .with_threads(workers)
            .with_admit_per_tick(3);
        multiplex_votes(
            &opts,
            &ScheduleSpec::default(),
            &votes,
            &svc,
            &ChaosProfile::reliable(),
        )
        .unwrap_or_else(|e| panic!("workers={workers}: {e}"))
    };
    let base = run(1);
    assert_eq!(base.len(), 9);
    for (v, view) in base.iter().enumerate() {
        for (i, decision) in view.iter().enumerate() {
            assert_eq!(
                *decision,
                Some(votes[v]),
                "instance {v} at node {i}: fault-free vote must settle on the transmitter's value"
            );
        }
    }
    assert_eq!(base, run(4), "multiplexed votes diverge across workers");
}
