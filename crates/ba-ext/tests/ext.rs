//! End-to-end properties of the extension protocol:
//!
//! * reassembled payloads are byte-identical — to the input and across
//!   worker counts {1, 4, 8} (scoped threads and the shared pool);
//! * any `t` chunk-withholding or chunk-garbling Byzantine processors
//!   either reconstruct (correct sender ⇒ always) or abort with a
//!   structured reason — **never** a wrong payload;
//! * the fault-free wire volume stays inside the gated constant of the
//!   `ℓ·n` lower-bound regime.

use ba_crypto::rng::SimRng;
use ba_crypto::{Bytes, ProcessId};
use ba_ext::check::{run_scenario, sweep, ExtScenario};
use ba_ext::{agree_on_payload, AbortReason, ExtDecision, ExtOptions};
use ba_sim::schedule::{FaultBehavior, ScheduleSpec};

fn payload(len: usize, seed: u64) -> Bytes {
    let mut rng = SimRng::new(seed);
    Bytes::from((0..len).map(|_| rng.next_u64() as u8).collect::<Vec<u8>>())
}

/// Reassembly is byte-identical to the input payload and across worker
/// counts, with and without the shared pool, on several geometries.
#[test]
fn reassembly_is_byte_identical_across_worker_counts() {
    for (n, t, len) in [(4, 1, 3_000), (16, 3, 65_536), (25, 4, 10_007)] {
        let p = payload(len, n as u64 * 31 + t as u64);
        let base_opts = ExtOptions {
            n,
            t,
            seed: 77,
            ..ExtOptions::default()
        };
        let base = agree_on_payload(&p, &base_opts).expect("baseline runs");
        for (id, decision) in base.correct_decisions() {
            let got = decision.and_then(|d| d.payload()).expect("decides");
            assert_eq!(got, &p, "node {id} (n={n})");
        }
        for threads in [4, 8] {
            for pooled in [false, true] {
                let opts = ExtOptions {
                    threads,
                    pooled,
                    ..base_opts.clone()
                };
                let report = agree_on_payload(&p, &opts).expect("threaded run");
                assert_eq!(
                    report.decisions, base.decisions,
                    "decisions diverge at threads={threads} pooled={pooled} n={n}"
                );
                assert_eq!(
                    report.dissemination, base.dissemination,
                    "metrics diverge at threads={threads} pooled={pooled} n={n}"
                );
                assert_eq!(report.inner_metrics, base.inner_metrics);
                assert_eq!(report.vote, base.vote);
                assert_eq!(report.fetch, base.fetch);
                assert_eq!(report.availability, base.availability);
            }
        }
    }
}

/// Exactly `t` silent chunk owners (their chunks never enter the grid):
/// every correct node must still reconstruct the exact payload via the
/// parity chunks and grid repair.
#[test]
fn t_withheld_chunks_still_reconstruct() {
    let opts = ExtOptions {
        n: 16,
        t: 3,
        seed: 5,
        ..ExtOptions::default()
    };
    let p = payload(50_000, 99);
    for faulty in [[1usize, 2, 3], [5, 10, 15], [4, 8, 12]] {
        let scenario = ExtScenario {
            spec: ScheduleSpec {
                faults: faulty
                    .iter()
                    .map(|&i| (ProcessId(i as u32), FaultBehavior::Silent))
                    .collect(),
                link_drops: Vec::new(),
            },
            garble: Vec::new(),
            label: format!("withhold {faulty:?}"),
        };
        let outcome = run_scenario(&p, &opts, &scenario);
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        let report = outcome.report.expect("ran");
        for (id, decision) in report.correct_decisions() {
            assert_eq!(
                decision.and_then(|d| d.payload()),
                Some(&p),
                "{id} must reconstruct despite withheld chunks {faulty:?}"
            );
        }
    }
}

/// Exactly `t` garbling relays (corrupt bytes under a stale signature):
/// garbled chunks die at verification, so this degrades to withholding
/// and every correct node still reconstructs the exact payload.
#[test]
fn t_garbled_chunks_still_reconstruct() {
    let opts = ExtOptions {
        n: 16,
        t: 3,
        seed: 6,
        ..ExtOptions::default()
    };
    let p = payload(30_000, 13);
    for garblers in [[1usize, 6, 11], [13, 14, 15]] {
        let scenario = ExtScenario {
            spec: ScheduleSpec::default(),
            garble: garblers.iter().map(|&i| ProcessId(i as u32)).collect(),
            label: format!("garble {garblers:?}"),
        };
        let outcome = run_scenario(&p, &opts, &scenario);
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        let report = outcome.report.expect("ran");
        for (id, decision) in report.correct_decisions() {
            assert_eq!(
                decision.and_then(|d| d.payload()),
                Some(&p),
                "{id} must reconstruct despite garblers {garblers:?}"
            );
        }
    }
}

/// The full standard scenario family (withholding, crashing, omitting,
/// garbling, random mixes at full budget) never produces a wrong payload
/// and never aborts under a correct sender.
#[test]
fn scenario_sweep_never_yields_wrong_payload() {
    let opts = ExtOptions {
        n: 16,
        t: 3,
        seed: 404,
        ..ExtOptions::default()
    };
    let p = payload(8_192, 1_234);
    let report = sweep(&p, &opts, 6);
    let failures: Vec<_> = report
        .failures()
        .map(|o| (o.label.clone(), o.failure.clone()))
        .collect();
    assert!(failures.is_empty(), "property violations: {failures:?}");
}

/// A Byzantine sender that stays silent forces the *same* structured
/// abort at every correct node — the availability vote falls short of
/// `t + 1`, so everyone lands on the identical attributed
/// `InsufficientAvailability` reason, never a fabricated payload and
/// never a split outcome.
#[test]
fn silent_sender_aborts_everywhere_with_identical_reason() {
    let opts = ExtOptions {
        n: 9,
        t: 2,
        seed: 3,
        ..ExtOptions::default()
    };
    let p = payload(4_000, 8);
    let scenario = ExtScenario {
        spec: ScheduleSpec {
            faults: vec![(ProcessId(0), FaultBehavior::Silent)],
            link_drops: Vec::new(),
        },
        garble: Vec::new(),
        label: "silent sender".into(),
    };
    let outcome = run_scenario(&p, &opts, &scenario);
    assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
    let report = outcome.report.expect("ran");
    for (id, decision) in report.correct_decisions() {
        match decision {
            Some(ExtDecision::Abort(AbortReason::InsufficientAvailability {
                available,
                needed,
            })) => {
                assert_eq!(*available, 0, "{id}: nobody reconstructs without chunks");
                assert_eq!(*needed, opts.t + 1, "{id}");
            }
            other => panic!("{id}: expected the agreed abort, got {other:?}"),
        }
    }
    ba_ext::net::outcome_agreement(&report).expect("identical outcome everywhere");
}

/// The acceptance invariant: across ≥200 seeded random within-budget
/// schedules (Byzantine sender included — position 0 is a candidate fault
/// slot), no run leaves two correct nodes with differing `ExtDecision`
/// variants or payloads. The strict judge inside the sweep enforces full
/// outcome equality including abort reasons.
#[test]
fn outcome_agreement_holds_across_200_random_schedules() {
    let opts = ExtOptions {
        n: 9,
        t: 2,
        seed: 2_026,
        ..ExtOptions::default()
    };
    let p = payload(2_048, 55);
    let report = sweep(&p, &opts, 200);
    assert!(report.len() >= 200, "family too small: {}", report.len());
    let failures: Vec<_> = report
        .failures()
        .map(|o| (o.label.clone(), o.failure.clone()))
        .collect();
    assert!(failures.is_empty(), "outcome disagreements: {failures:?}");
}

/// Fault-free wire volume stays within the gated constant (4×) of ℓ·n
/// as the payload grows, and the payload/control split is accounted.
#[test]
fn fault_free_overhead_is_gated() {
    let opts = ExtOptions {
        n: 16,
        t: 2,
        seed: 1,
        ..ExtOptions::default()
    };
    for len in [16 * 1024, 256 * 1024] {
        let p = payload(len, len as u64);
        let report = agree_on_payload(&p, &opts).expect("runs");
        let ratio = report.overhead_ratio();
        assert!(ratio < 4.0, "overhead {ratio} at ℓ = {len}");
        assert!(
            report.dissemination.payload_bytes_by_correct <= report.dissemination.bytes_by_correct,
            "payload accounting exceeds wire accounting"
        );
        assert!(
            report.dissemination.payload_bytes_by_correct as usize >= len,
            "payload traffic below ℓ is impossible when everyone reconstructs"
        );
    }
}
